"""One reproduction function per table and figure of the paper's evaluation.

Every function is self-contained: it generates the (synthetic) dataset,
builds and trains the relevant estimators, runs the workload, and returns a
dictionary holding the structured results plus a ``text`` field with a
paper-style rendering.  The functions are what the ``benchmarks/`` suite and
the ``python -m repro.bench`` command line call.

Experiment ↔ paper mapping:

========================  =====================================================
``figure4_*``             Figure 4 — query selectivity distribution
``table3_*``              Table 3  — accuracy on DMV, all estimator families
``table4_*``              Table 4  — accuracy on Conviva-A
``table5_*``              Table 5  — robustness to out-of-distribution queries
``figure5_*``             Figure 5 — training time vs model quality
``figure6_*``             Figure 6 — estimation latency
``table6_*``              Table 6  — query-region size vs enumeration latency
``table7_*``              Table 7  — model size vs entropy gap
``figure7_*``             Figure 7 — robustness to model entropy gap (oracle)
``figure8_*``             Figure 8 — robustness to column count (oracle)
``table8_*``              Table 8  — robustness to data shifts
========================  =====================================================
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from ..core import (
    MADEModel,
    NaruConfig,
    NaruEstimator,
    NoisyOracleModel,
    OracleModel,
    ProgressiveSampler,
    Trainer,
)
from ..data import Table, make_conviva_a, make_conviva_b, make_dmv, partition_by_column
from ..estimators import (
    CardinalityEstimator,
    ChowLiuEstimator,
    DBMS1Estimator,
    IndependenceEstimator,
    KDEEstimator,
    KDESupervEstimator,
    MSCNEstimator,
    MultiDimHistogramEstimator,
    PostgresEstimator,
    SamplingEstimator,
)
from ..query import (
    LabeledQuery,
    OODWorkloadGenerator,
    Query,
    WorkloadGenerator,
    q_error,
    summarize_errors,
    true_selectivity,
)
from .harness import accuracy_by_bucket, compare_estimators
from .reports import (
    format_accuracy_table,
    format_latency_table,
    format_series,
    format_summary_table,
)
from .scales import ExperimentScale, active_scale

__all__ = [
    "NaruSampleVariant",
    "figure4_selectivity_distribution",
    "table3_dmv_accuracy",
    "table4_conviva_accuracy",
    "table5_ood_robustness",
    "figure5_training_quality",
    "figure6_estimation_latency",
    "table6_query_region",
    "table7_model_size",
    "figure7_entropy_gap",
    "figure8_column_scaling",
    "table8_data_shift",
    "serve_throughput",
    "serve_multi",
    "serve_replicated",
    "serve_stream",
    "serve_procfleet",
    "serve_refresh",
    "serve_loadgen",
]


def _timed(function, *args, **kwargs):
    """Wall-clock one call; returns ``(result, elapsed_seconds)``.

    The serving benchmarks time whole serving passes this way because cache
    hits never touch the engine-internal batch timers.
    """
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


class NaruSampleVariant(CardinalityEstimator):
    """A view of a trained Naru model queried with a fixed sample budget.

    The paper's ``Naru-1000`` / ``Naru-2000`` / ``Naru-4000`` rows all use the
    *same* trained model and only vary the number of progressive-sampling
    paths; this wrapper reproduces that without retraining.
    """

    def __init__(self, base: NaruEstimator, num_samples: int) -> None:
        super().__init__(base.table)
        self.base = base
        self.num_samples = num_samples
        self.name = f"Naru-{num_samples}"

    def estimate_selectivity(self, query: Query) -> float:
        return self.base.estimate_selectivity(query, num_samples=self.num_samples,
                                              method="progressive")

    def size_bytes(self) -> int:
        return self.base.size_bytes()


# --------------------------------------------------------------------------- #
# Shared builders
# --------------------------------------------------------------------------- #
def _train_naru(table: Table, scale: ExperimentScale, seed: int = 0) -> NaruEstimator:
    config = NaruConfig(hidden_sizes=scale.naru_hidden, epochs=scale.naru_epochs,
                        batch_size=scale.naru_batch_size,
                        progressive_samples=scale.naru_samples[-1], seed=seed)
    estimator = NaruEstimator(table, config)
    estimator.fit()
    return estimator


def _workload(table: Table, count: int, seed: int = 100,
              ood: bool = False) -> list[LabeledQuery]:
    generator_cls = OODWorkloadGenerator if ood else WorkloadGenerator
    generator = generator_cls(table, min_filters=5, max_filters=min(11, table.num_columns),
                              seed=seed)
    return generator.generate_labeled(count)


def _build_dmv_estimator_suite(table: Table, scale: ExperimentScale,
                               training_workload: list[LabeledQuery],
                               naru: NaruEstimator) -> list[CardinalityEstimator]:
    """All estimator families of Table 2, built under comparable budgets."""
    budget = naru.size_bytes()
    estimators: list[CardinalityEstimator] = [
        MultiDimHistogramEstimator(table, storage_budget_bytes=max(budget, 64_000)),
        IndependenceEstimator(table),
        PostgresEstimator(table),
        DBMS1Estimator(table),
        ChowLiuEstimator(table),
        SamplingEstimator(table, fraction=scale.sample_fraction, seed=1),
        KDEEstimator(table, sample_size=scale.kde_sample, seed=2),
    ]

    kde_superv = KDESupervEstimator(table, sample_size=scale.kde_sample, seed=2)
    feedback = [(item.query, item.cardinality)
                for item in training_workload[:scale.kde_feedback_queries]]
    kde_superv.fit_feedback(feedback, passes=1)
    estimators.append(kde_superv)

    mscn_base = MSCNEstimator(table, sample_size=1000, seed=3, name="MSCN-base")
    mscn_base.fit(training_workload, epochs=scale.mscn_epochs)
    estimators.append(mscn_base)

    mscn_zero = MSCNEstimator(table, sample_size=0, seed=3, name="MSCN-0")
    mscn_zero.fit(training_workload, epochs=scale.mscn_epochs)
    estimators.append(mscn_zero)

    estimators.extend(NaruSampleVariant(naru, samples) for samples in scale.naru_samples)
    return estimators


# --------------------------------------------------------------------------- #
# Figure 4 — query selectivity distribution
# --------------------------------------------------------------------------- #
def figure4_selectivity_distribution(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Figure 4: the CDF of true selectivities of the workload."""
    scale = scale or active_scale()
    results = {}
    rows = []
    for name, table in (("DMV", make_dmv(scale.dmv_rows)),
                        ("Conviva-A", make_conviva_a(scale.conviva_a_rows))):
        workload = _workload(table, scale.num_queries, seed=100)
        selectivities = np.array([item.selectivity for item in workload])
        quantiles = {f"p{int(q * 100)}": float(np.quantile(selectivities, q))
                     for q in (0.1, 0.25, 0.5, 0.75, 0.9)}
        buckets = {
            "high": float((selectivities > 0.02).mean()),
            "medium": float(((selectivities > 0.005) & (selectivities <= 0.02)).mean()),
            "low": float((selectivities <= 0.005).mean()),
        }
        results[name] = {"quantiles": quantiles, "bucket_fractions": buckets}
        rows.append({"dataset": name, **quantiles, **{f"frac_{k}": v for k, v in buckets.items()}})
    text = format_series(rows, list(rows[0].keys()),
                         "Figure 4: distribution of query selectivities")
    return {"results": results, "text": text}


# --------------------------------------------------------------------------- #
# Tables 3 and 4 — headline accuracy comparisons
# --------------------------------------------------------------------------- #
def table3_dmv_accuracy(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Table 3: q-error quantiles of every estimator family on DMV."""
    scale = scale or active_scale()
    table = make_dmv(scale.dmv_rows)
    naru = _train_naru(table, scale, seed=0)
    training_workload = _workload(table, scale.mscn_training_queries, seed=7)
    test_workload = _workload(table, scale.num_queries, seed=100)

    estimators = _build_dmv_estimator_suite(table, scale, training_workload, naru)
    runs = compare_estimators(estimators, test_workload)
    buckets = accuracy_by_bucket(runs)
    text = format_accuracy_table(buckets, "Table 3: estimation errors on DMV (synthetic)")
    return {"runs": runs, "buckets": buckets, "text": text, "naru": naru, "table": table}


def table4_conviva_accuracy(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Table 4: accuracy on Conviva-A for the promising baselines."""
    scale = scale or active_scale()
    table = make_conviva_a(scale.conviva_a_rows)
    naru = _train_naru(table, scale, seed=1)
    training_workload = _workload(table, scale.mscn_training_queries, seed=8)
    test_workload = _workload(table, scale.num_queries, seed=200)

    estimators: list[CardinalityEstimator] = [
        DBMS1Estimator(table),
        SamplingEstimator(table, fraction=scale.sample_fraction, seed=1),
        KDEEstimator(table, sample_size=scale.kde_sample, seed=2),
    ]
    kde_superv = KDESupervEstimator(table, sample_size=scale.kde_sample, seed=2)
    kde_superv.fit_feedback([(item.query, item.cardinality)
                             for item in training_workload[:scale.kde_feedback_queries]],
                            passes=1)
    estimators.append(kde_superv)
    mscn = MSCNEstimator(table, sample_size=1000, seed=3, name="MSCN-base")
    mscn.fit(training_workload, epochs=scale.mscn_epochs)
    estimators.append(mscn)
    estimators.extend(NaruSampleVariant(naru, samples) for samples in scale.naru_samples)

    runs = compare_estimators(estimators, test_workload)
    buckets = accuracy_by_bucket(runs)
    text = format_accuracy_table(buckets, "Table 4: estimation errors on Conviva-A (synthetic)")
    return {"runs": runs, "buckets": buckets, "text": text, "naru": naru, "table": table}


# --------------------------------------------------------------------------- #
# Table 5 — out-of-distribution robustness
# --------------------------------------------------------------------------- #
def table5_ood_robustness(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Table 5: literals drawn from the full domain (mostly empty)."""
    scale = scale or active_scale()
    table = make_dmv(scale.dmv_rows)
    naru = _train_naru(table, scale, seed=0)
    training_workload = _workload(table, scale.mscn_training_queries, seed=7)
    ood_workload = _workload(table, scale.ood_queries, seed=300, ood=True)

    mscn = MSCNEstimator(table, sample_size=1000, seed=3, name="MSCN-base")
    mscn.fit(training_workload, epochs=scale.mscn_epochs)
    kde_superv = KDESupervEstimator(table, sample_size=scale.kde_sample, seed=2)
    kde_superv.fit_feedback([(item.query, item.cardinality)
                             for item in training_workload[:scale.kde_feedback_queries]],
                            passes=1)
    estimators: list[CardinalityEstimator] = [
        mscn,
        kde_superv,
        SamplingEstimator(table, fraction=scale.sample_fraction, seed=1),
        NaruSampleVariant(naru, scale.naru_samples[-1]),
    ]
    runs = compare_estimators(estimators, ood_workload)
    summaries = {name: run.overall_summary() for name, run in runs.items()}
    zero_fraction = float(np.mean([item.cardinality == 0 for item in ood_workload]))
    text = format_summary_table(
        summaries,
        f"Table 5: robustness to OOD queries ({zero_fraction:.0%} have zero cardinality)")
    return {"runs": runs, "summaries": summaries, "zero_fraction": zero_fraction, "text": text}


# --------------------------------------------------------------------------- #
# Figure 5 — training time vs quality
# --------------------------------------------------------------------------- #
def figure5_training_quality(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Figure 5: entropy gap and max q-error per training epoch."""
    scale = scale or active_scale()
    results = {}
    rows = []
    for name, table, seed in (("DMV", make_dmv(scale.dmv_rows), 0),
                              ("Conviva-A", make_conviva_a(scale.conviva_a_rows), 1)):
        workload = _workload(table, scale.training_curve_queries, seed=400 + seed)
        config = NaruConfig(hidden_sizes=scale.naru_hidden, epochs=0,
                            batch_size=scale.naru_batch_size,
                            progressive_samples=scale.naru_samples[-1], seed=seed)
        estimator = NaruEstimator(table, config)
        estimator._fitted = True  # evaluated after each manual epoch below
        per_epoch = []
        for epoch in range(1, scale.training_curve_epochs + 1):
            start = time.perf_counter()
            estimator.trainer.train_epoch()
            epoch_seconds = time.perf_counter() - start
            gap = estimator.entropy_gap_bits(sample_rows=2048)
            errors = [q_error(estimator.estimate_cardinality(item.query), item.cardinality)
                      for item in workload]
            per_epoch.append({
                "dataset": name, "epoch": epoch, "epoch_seconds": epoch_seconds,
                "entropy_gap_bits": gap, "max_error": float(max(errors)),
                "median_error": float(np.median(errors)),
            })
            rows.append(per_epoch[-1])
        results[name] = per_epoch
    text = format_series(rows, ["dataset", "epoch", "epoch_seconds",
                                "entropy_gap_bits", "median_error", "max_error"],
                         "Figure 5: training time vs quality")
    return {"results": results, "text": text}


# --------------------------------------------------------------------------- #
# Figure 6 and Table 6 — latency
# --------------------------------------------------------------------------- #
def figure6_estimation_latency(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Figure 6: per-query estimation latency of each estimator."""
    scale = scale or active_scale()
    table = make_dmv(scale.dmv_rows)
    naru = _train_naru(table, scale, seed=0)
    training_workload = _workload(table, min(scale.mscn_training_queries, 200), seed=7)
    workload = _workload(table, scale.latency_queries, seed=500)

    mscn = MSCNEstimator(table, sample_size=1000, seed=3, name="MSCN-base")
    mscn.fit(training_workload, epochs=max(scale.mscn_epochs // 2, 3))
    estimators: list[CardinalityEstimator] = [
        PostgresEstimator(table),
        DBMS1Estimator(table),
        SamplingEstimator(table, fraction=scale.sample_fraction, seed=1),
        KDEEstimator(table, sample_size=scale.kde_sample, seed=2),
        mscn,
    ]
    estimators.extend(NaruSampleVariant(naru, samples) for samples in scale.naru_samples)

    runs = compare_estimators(estimators, workload)
    latencies = {name: run.latency_quantiles() for name, run in runs.items()}
    text = format_latency_table(latencies, "Figure 6: estimation latency (ms, CPU)")
    return {"latencies": latencies, "runs": runs, "text": text,
            "naru": naru, "table": table, "workload": workload}


def table6_query_region(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Table 6: query-region sizes vs enumeration vs Naru latency."""
    scale = scale or active_scale()
    rows = []
    results = {}
    for name, table, seed in (("DMV", make_dmv(scale.dmv_rows), 0),
                              ("Conviva-A", make_conviva_a(scale.conviva_a_rows), 1)):
        workload = _workload(table, scale.num_queries, seed=600 + seed)
        region_sizes = np.array([item.query.region_size(table) for item in workload])
        region_p99 = float(np.quantile(region_sizes, 0.99))

        # Throughput of exact enumeration: points/second through the model.
        model = MADEModel(table, hidden_sizes=scale.naru_hidden, seed=seed)
        probe = table.sample_rows(2048, np.random.default_rng(0))
        start = time.perf_counter()
        model.log_prob(probe)
        per_point_seconds = (time.perf_counter() - start) / probe.shape[0]
        enumeration_hours = region_p99 * per_point_seconds / 3600.0

        # Measured progressive-sampling latency on the same model.
        sampler = ProgressiveSampler(model, seed=0)
        hard_query = workload[int(np.argmax(region_sizes))].query
        start = time.perf_counter()
        sampler.estimate_selectivity(hard_query.column_masks(table),
                                     num_samples=scale.naru_samples[-1])
        naru_ms = (time.perf_counter() - start) * 1000.0

        results[name] = {"region_size_p99": region_p99,
                         "enumeration_hours_estimated": enumeration_hours,
                         "naru_latency_ms": naru_ms}
        rows.append({"dataset": name, "region_p99": region_p99,
                     "enum_hours_est": enumeration_hours, "naru_ms": naru_ms})
    text = format_series(rows, ["dataset", "region_p99", "enum_hours_est", "naru_ms"],
                         "Table 6: query region size vs enumeration vs progressive sampling")
    return {"results": results, "text": text}


# --------------------------------------------------------------------------- #
# Table 7 — model size vs entropy gap
# --------------------------------------------------------------------------- #
def table7_model_size(scale: ExperimentScale | None = None,
                      widths: tuple[int, ...] = (32, 64, 128, 256),
                      epochs: int | None = None) -> dict:
    """Reproduce Table 7: larger hidden layers yield lower entropy gaps."""
    scale = scale or active_scale()
    epochs = epochs if epochs is not None else max(scale.naru_epochs // 2, 2)
    table = make_conviva_a(scale.conviva_a_rows)
    rows = []
    results = {}
    for width in widths:
        hidden = (width,) * 4
        model = MADEModel(table, hidden_sizes=hidden, seed=0)
        trainer = Trainer(model, table, batch_size=scale.naru_batch_size,
                          learning_rate=5e-3)
        trainer.train(epochs=epochs)
        gap = trainer.entropy_gap_bits(sample_rows=2048)
        size_mb = model.size_bytes() / 1e6
        results[width] = {"size_mb": size_mb, "entropy_gap_bits": gap}
        rows.append({"architecture": "x".join([str(width)] * 4),
                     "size_mb": size_mb, "entropy_gap_bits": gap})
    text = format_series(rows, ["architecture", "size_mb", "entropy_gap_bits"],
                         f"Table 7: model size vs entropy gap ({epochs} epochs, Conviva-A)")
    return {"results": results, "text": text}


# --------------------------------------------------------------------------- #
# Figures 7 and 8 — oracle-model micro-benchmarks
# --------------------------------------------------------------------------- #
def figure7_entropy_gap(scale: ExperimentScale | None = None,
                        noise_levels: tuple[float, ...] = (0.0, 0.05, 0.2, 0.5, 0.9),
                        sample_counts: tuple[int, ...] = (50, 250, 1000)) -> dict:
    """Reproduce Figure 7: accuracy vs artificial entropy gap of an oracle model."""
    scale = scale or active_scale()
    table = make_conviva_b(scale.conviva_b_rows, num_columns=100).project(
        [f"col_{i:03d}" for i in range(15)], name="conviva_b_15")
    workload = _workload(table, scale.oracle_queries, seed=700)

    baselines = {
        "Indep": IndependenceEstimator(table),
        "Sample(1%)": SamplingEstimator(table, fraction=0.01, seed=0),
    }
    baseline_errors = {
        name: float(max(q_error(est.estimate_cardinality(item.query), item.cardinality)
                        for item in workload))
        for name, est in baselines.items()
    }

    rows = []
    results = {"baselines": baseline_errors, "sweep": []}
    for noise in noise_levels:
        model = NoisyOracleModel(table, noise=noise)
        gap = model.entropy_gap_bits(sample_rows=min(scale.conviva_b_rows, 1000))
        entry = {"noise": noise, "entropy_gap_bits": gap}
        for samples in sample_counts:
            sampler = ProgressiveSampler(model, seed=0)
            errors = []
            for item in workload:
                estimate = sampler.estimate_selectivity(item.query.column_masks(table),
                                                        num_samples=samples)
                errors.append(q_error(estimate * table.num_rows, item.cardinality))
            entry[f"max_error_naru_{samples}"] = float(max(errors))
        results["sweep"].append(entry)
        rows.append(entry)
    columns = ["noise", "entropy_gap_bits"] + [f"max_error_naru_{s}" for s in sample_counts]
    text = format_series(rows, columns,
                         "Figure 7: accuracy vs model entropy gap (oracle, 15 columns)")
    text += ("\nBaselines (max error): "
             + ", ".join(f"{k}={v:.1f}" for k, v in baseline_errors.items()))
    return {**results, "text": text}


def figure8_column_scaling(scale: ExperimentScale | None = None,
                           column_counts: tuple[int, ...] = (5, 15, 30, 50, 75, 100),
                           sample_counts: tuple[int, ...] = (100, 1000, 10_000)) -> dict:
    """Reproduce Figure 8: progressive sampling as the column count grows."""
    scale = scale or active_scale()
    full = make_conviva_b(scale.conviva_b_rows, num_columns=max(column_counts))
    rows = []
    results = []
    for num_columns in column_counts:
        table = full.project([f"col_{i:03d}" for i in range(num_columns)],
                             name=f"conviva_b_{num_columns}")
        generator = WorkloadGenerator(table, min_filters=min(5, num_columns),
                                      max_filters=min(12, num_columns), seed=800)
        workload = generator.generate_labeled(scale.oracle_queries)
        oracle = OracleModel(table)
        baselines = {
            "Indep": IndependenceEstimator(table),
            "Sample(1%)": SamplingEstimator(table, fraction=0.01, seed=0),
        }
        entry = {"columns": num_columns,
                 "log10_joint": table.log_joint_size()}
        for samples in sample_counts:
            sampler = ProgressiveSampler(oracle, seed=0)
            errors = [q_error(sampler.estimate_selectivity(
                item.query.column_masks(table), num_samples=samples) * table.num_rows,
                item.cardinality) for item in workload]
            entry[f"max_error_naru_{samples}"] = float(max(errors))
        for name, estimator in baselines.items():
            errors = [q_error(estimator.estimate_cardinality(item.query), item.cardinality)
                      for item in workload]
            entry[f"max_error_{name}"] = float(max(errors))
        results.append(entry)
        rows.append(entry)
    columns = (["columns", "log10_joint"]
               + [f"max_error_naru_{s}" for s in sample_counts]
               + ["max_error_Indep", "max_error_Sample(1%)"])
    text = format_series(rows, columns,
                         "Figure 8: accuracy vs number of columns (oracle model)")
    return {"results": results, "text": text}


# --------------------------------------------------------------------------- #
# Table 8 — data shifts
# --------------------------------------------------------------------------- #
def table8_data_shift(scale: ExperimentScale | None = None) -> dict:
    """Reproduce Table 8: stale vs refreshed Naru under partition-by-partition ingest."""
    scale = scale or active_scale()
    table = make_dmv(scale.dmv_rows)
    partitions = partition_by_column(table, "valid_date", scale.shift_partitions)

    # Both estimators are built against the *full-table* dictionaries (the
    # paper's "domain from user annotation" route), then trained on partition 1.
    config = NaruConfig(hidden_sizes=scale.naru_hidden, epochs=0,
                        batch_size=scale.naru_batch_size,
                        progressive_samples=scale.naru_samples[-1], seed=0)
    stale = NaruEstimator(table, config)
    refreshed = NaruEstimator(table, config.with_overrides(seed=0))
    full_codes = table.encoded()

    def partition_codes(part: Table) -> np.ndarray:
        columns = [table.column(name) for name in table.column_names]
        return np.stack([
            np.searchsorted(column.domain, part.column(column.name).values)
            for column in columns
        ], axis=1)

    first = partition_codes(partitions[0])
    stale.refresh(first, epochs=scale.naru_epochs)
    refreshed.refresh(first, epochs=scale.naru_epochs)
    stale._fitted = refreshed._fitted = True

    generator = WorkloadGenerator(partitions[0], min_filters=5,
                                  max_filters=min(11, table.num_columns), seed=900)
    queries = generator.generate(scale.shift_queries)

    visible = partitions[0]
    visible_codes = first
    rows = []
    results = []
    for index in range(scale.shift_partitions):
        if index > 0:
            visible = visible.concat(partitions[index])
            visible_codes = np.concatenate(
                [visible_codes, partition_codes(partitions[index])])
            refreshed.refresh(visible_codes, epochs=1)
        for estimator in (stale, refreshed):
            estimator.set_row_count(visible.num_rows)

        entry = {"partitions_ingested": index + 1}
        for label, estimator in (("stale", stale), ("refreshed", refreshed)):
            errors = []
            for query in queries:
                truth = true_selectivity(visible, query) * visible.num_rows
                errors.append(q_error(estimator.estimate_cardinality(query), truth))
            summary = summarize_errors(errors)
            entry[f"{label}_p90"] = float(np.quantile(errors, 0.90))
            entry[f"{label}_max"] = summary.maximum
        results.append(entry)
        rows.append(entry)
    text = format_series(rows, ["partitions_ingested", "refreshed_p90", "refreshed_max",
                                "stale_p90", "stale_max"],
                         "Table 8: robustness to data shifts (DMV partitioned by date)")
    return {"results": results, "text": text}


def serve_throughput(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: throughput of the batched serving engine.

    Serves the same workload three times through the same trained Naru model:
    one query at a time through the unfused reference path (the paper's §5
    evaluation regime: no batching, no cache, no prefix dedup, full forward
    per conditional — see :func:`repro.serve.engine.run_sequential`), then
    twice through :class:`repro.serve.EstimationEngine` with the fused hot
    path (column-sliced conditionals, prefix-deduplicated sampling, the
    vectorized packed-prefix conditional cache) — a cold first pass and a
    warm steady-state pass.  It reports queries/second, the cold and warm
    speedups, the prefix-dedup ratio and the largest per-query estimate
    difference, which is exactly ``0.0``: the fused stack is bit-identical
    to the reference path by construction (every kernel is row-exact).
    """
    from ..data import make_census
    from ..serve import EstimationEngine, run_sequential

    scale = scale or active_scale()
    table = make_census(scale.serve_rows)
    config = NaruConfig(epochs=scale.serve_epochs, hidden_sizes=(64, 64),
                        batch_size=256, progressive_samples=scale.serve_samples,
                        seed=0)
    naru = NaruEstimator(table, config)
    naru.fit()
    generator = WorkloadGenerator(table, min_filters=5,
                                  max_filters=min(11, table.num_columns), seed=0)
    queries = generator.generate(scale.serve_queries)

    sequential = run_sequential(naru, queries, num_samples=scale.serve_samples,
                                seed=0)
    engine = EstimationEngine(naru, batch_size=scale.serve_batch_size,
                              num_samples=scale.serve_samples, seed=0)
    cold = engine.run(queries)      # first sight of the workload, cache empty
    warm = engine.run(queries)      # steady state: conditional cache is hot

    drift = max(
        float(np.max(np.abs(cold.selectivities - sequential.selectivities))),
        float(np.max(np.abs(warm.selectivities - cold.selectivities))))
    cold_speedup = (sequential.stats.elapsed_s / cold.stats.elapsed_s
                    if cold.stats.elapsed_s > 0 else float("inf"))
    warm_speedup = (sequential.stats.elapsed_s / warm.stats.elapsed_s
                    if warm.stats.elapsed_s > 0 else float("inf"))
    cache = warm.stats.cache or {}
    rows = [
        {"mode": "sequential", "queries_per_second": sequential.stats.queries_per_second,
         "elapsed_s": sequential.stats.elapsed_s, "batches": sequential.stats.num_batches},
        {"mode": "batched-cold", "queries_per_second": cold.stats.queries_per_second,
         "elapsed_s": cold.stats.elapsed_s, "batches": cold.stats.num_batches},
        {"mode": "batched-warm", "queries_per_second": warm.stats.queries_per_second,
         "elapsed_s": warm.stats.elapsed_s, "batches": warm.stats.num_batches},
    ]
    text = format_series(
        rows, ["mode", "queries_per_second", "elapsed_s", "batches"],
        f"Serving throughput ({scale.serve_queries} queries, "
        f"{scale.serve_samples} samples, batch={scale.serve_batch_size}): "
        f"{cold_speedup:.2f}x cold / {warm_speedup:.2f}x warm speedup over the "
        f"unfused sequential baseline, prefix dedup "
        f"{cold.stats.dedup_ratio:.2f}x, cache hit rate "
        f"{cache.get('hit_rate', 0.0):.1%}, estimate drift {drift:g}")
    return {
        "text": text,
        "speedup": warm_speedup,
        "cold_speedup": cold_speedup,
        "max_estimate_drift": drift,
        "sequential": sequential.stats.as_dict(),
        "batched": warm.stats.as_dict(),
        "batched_cold": cold.stats.as_dict(),
        "num_queries": len(queries),
    }


def serve_multi(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: fleet throughput of the multi-model serving router.

    Registers two base tables (a users dimension and a sessions fact table)
    plus their equi-join — served exactly like a base table, per §4.1 — in a
    :class:`repro.serve.ModelRegistry`, then answers one interleaved mixed
    workload two ways: through a :class:`repro.serve.FleetRouter` (per-model
    micro-batches, per-model LRU caches under one shared budget) and through
    N independent sequential engines (one unbatched, uncached sampler pass
    per query, models visited one after another).  Both sides key every
    query's random stream by its global workload index, so the estimates
    agree to float round-off; the reported numbers are fleet queries/second,
    the per-route breakdown, and the routed-vs-sequential speedup.
    """
    from ..data import JoinSpec, make_sessions, make_users
    from ..serve import (
        FleetRouter,
        ModelRegistry,
        generate_mixed_workload,
        run_fleet_sequential,
    )

    scale = scale or active_scale()
    config = NaruConfig(epochs=scale.serve_multi_epochs, hidden_sizes=(64, 64),
                        batch_size=256,
                        progressive_samples=scale.serve_multi_samples, seed=0)
    registry = ModelRegistry(default_config=config)
    registry.register_table(make_users(scale.serve_multi_users))
    registry.register_table(make_sessions(scale.serve_multi_rows,
                                          num_users=scale.serve_multi_users))
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))
    registry.fit_all()

    queries = generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names},
        scale.serve_multi_queries, min_filters=2, max_filters=5, seed=0)

    sequential = run_fleet_sequential(registry, queries,
                                      num_samples=scale.serve_multi_samples,
                                      seed=0)
    router = FleetRouter(registry, batch_size=scale.serve_multi_batch_size,
                         num_samples=scale.serve_multi_samples, seed=0)
    cold = router.run(queries)      # first sight of the workload, caches empty
    warm = router.run(queries)      # steady state: per-model caches are hot

    drift = max(
        float(np.max(np.abs(cold.selectivities - sequential.selectivities))),
        float(np.max(np.abs(warm.selectivities - cold.selectivities))))
    cold_speedup = (sequential.stats.elapsed_s / cold.stats.elapsed_s
                    if cold.stats.elapsed_s > 0 else float("inf"))
    warm_speedup = (sequential.stats.elapsed_s / warm.stats.elapsed_s
                    if warm.stats.elapsed_s > 0 else float("inf"))
    misrouted = sum(result.route != result.query.table for result in warm.results)

    rows = []
    for route, route_stats in warm.stats.routes.items():
        cache = route_stats["cache"] or {}
        rows.append({
            "route": route,
            "queries": route_stats["num_queries"],
            "queries_per_second": route_stats["queries_per_second"],
            "cache_hit_rate": cache.get("hit_rate", 0.0),
        })
    rows.append({"route": "fleet", "queries": warm.stats.num_queries,
                 "queries_per_second": warm.stats.queries_per_second,
                 "cache_hit_rate": float("nan")})
    text = format_series(
        rows, ["route", "queries", "queries_per_second", "cache_hit_rate"],
        f"Multi-model serving ({len(registry)} relations, "
        f"{warm.stats.num_queries} queries, batch="
        f"{scale.serve_multi_batch_size}): {cold_speedup:.2f}x cold / "
        f"{warm_speedup:.2f}x warm over N sequential engines")
    return {
        "text": text,
        "speedup": warm_speedup,
        "cold_speedup": cold_speedup,
        "max_estimate_drift": drift,
        "misrouted": misrouted,
        "num_models": len(registry),
        "model_storage_bytes": registry.size_bytes(),
        "sequential": sequential.stats.as_dict(),
        "fleet": warm.stats.as_dict(),
        "fleet_cold": cold.stats.as_dict(),
        "num_queries": len(queries),
        "estimates": [result.selectivity for result in warm.results],
        "routes": [result.route for result in warm.results],
    }


def serve_replicated(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: replicated hot-relation serving with admission control.

    A skewed mixed workload (``serve_repl_hot_fraction`` of the queries hammer
    the sessions fact table) is answered four ways over the same two trained
    models:

    * ``sequential`` — one unbatched, uncached sampler pass per query, the
      single-engine-per-relation baseline,
    * ``replicated-cold`` / ``replicated-warm`` — a
      :class:`repro.serve.FleetRouter` with the hot relation registered at
      ``serve_repl_replicas`` engine replicas, a bounded pending queue
      (``max_pending``, ``block`` policy) and the fleet-wide exact-match
      result cache; the warm pass replays the workload against hot caches,
    * ``replicas=1`` — the same router configuration without replication,
      used to assert that replication never changes an estimate.

    Every run keys each query's random stream by ``(seed, global workload
    index)``, so all model-computed estimates agree to float round-off; the
    warm pass is served from the result cache bit-for-bit.  Speedups are
    wall-clock (the warm pass spends its time in cache lookups, not engine
    batches, so engine-internal latencies alone would overstate it).  A final
    mini-run with a deliberately tiny ``max_pending`` under the ``shed``
    policy demonstrates load shedding and the typed accounting around it.
    """
    from ..data import make_sessions, make_users
    from ..serve import (
        FleetRouter,
        ModelRegistry,
        canonical_query_key,
        generate_mixed_workload,
        run_fleet_sequential,
    )

    scale = scale or active_scale()
    config = NaruConfig(epochs=scale.serve_repl_epochs, hidden_sizes=(64, 64),
                        batch_size=256,
                        progressive_samples=scale.serve_repl_samples, seed=0)
    registry = ModelRegistry(default_config=config)
    registry.register_table(make_users(scale.serve_repl_users))
    registry.register_table(
        make_sessions(scale.serve_repl_rows, num_users=scale.serve_repl_users),
        replicas=scale.serve_repl_replicas)
    registry.fit_all()

    hot = scale.serve_repl_hot_fraction
    queries = generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names},
        scale.serve_repl_queries, min_filters=2, max_filters=5, seed=0,
        weights={"users": 1.0 - hot, "sessions": hot})
    hot_queries = sum(query.table == "sessions" for query in queries)
    # Precondition of the warm-replay exactness claims below: an exact-match
    # cache may only hit on a true replay, so the workload must be free of
    # canonically-equal duplicates.  Fail here, loudly, rather than letting a
    # scale tweak surface as a confusing "drift" assertion in the benchmark.
    keys = [canonical_query_key(query, route=query.table) for query in queries]
    if len(set(keys)) != len(keys):
        raise RuntimeError(
            "serve_replicated needs a duplicate-free workload (the generated "
            "one collided); adjust the scale's serve_repl_* knobs")

    sequential, sequential_s = _timed(
        lambda: run_fleet_sequential(registry, queries,
                                     num_samples=scale.serve_repl_samples,
                                     seed=0))
    router = FleetRouter(registry, batch_size=scale.serve_repl_batch_size,
                         num_samples=scale.serve_repl_samples, seed=0,
                         max_pending=scale.serve_repl_max_pending,
                         overflow="block", result_cache=True)
    cold, cold_s = _timed(router.run, queries)   # caches empty, models cold
    warm, warm_s = _timed(router.run, queries)   # result cache answers repeats

    # Replication must not change a single estimate: serve the same workload
    # through an unreplicated router of the same shape and compare.
    registry.set_replicas("sessions", 1)
    single = FleetRouter(registry, batch_size=scale.serve_repl_batch_size,
                         num_samples=scale.serve_repl_samples, seed=0,
                         max_pending=scale.serve_repl_max_pending,
                         overflow="block").run(queries)
    registry.set_replicas("sessions", scale.serve_repl_replicas)

    drift = float(np.max(np.abs(cold.selectivities - sequential.selectivities)))
    replica_drift = float(np.max(np.abs(cold.selectivities - single.selectivities)))
    warm_drift = float(np.max(np.abs(warm.selectivities - cold.selectivities)))
    cold_speedup = sequential_s / cold_s if cold_s > 0 else float("inf")
    warm_speedup = sequential_s / warm_s if warm_s > 0 else float("inf")

    # Load-shedding demonstration: a group bounded far below the burst size
    # refuses the overflow loudly and accounts for every refusal.
    shedder = FleetRouter(registry, batch_size=scale.serve_repl_batch_size,
                          num_samples=scale.serve_repl_samples, seed=0,
                          max_pending=2, overflow="shed")
    shed_report = shedder.run(queries)

    hot_stats = warm.stats.routes.get("sessions", {})
    rows = [
        {"mode": "sequential", "wall_s": sequential_s,
         "queries_per_second": len(queries) / sequential_s},
        {"mode": "replicated-cold", "wall_s": cold_s,
         "queries_per_second": len(queries) / cold_s},
        {"mode": "replicated-warm", "wall_s": warm_s,
         "queries_per_second": len(queries) / warm_s},
    ]
    text = format_series(
        rows, ["mode", "wall_s", "queries_per_second"],
        f"Replicated hot-relation serving ({hot_queries}/{len(queries)} "
        f"queries on sessions x{scale.serve_repl_replicas} replicas, "
        f"max_pending={scale.serve_repl_max_pending}): "
        f"{cold_speedup:.2f}x cold / {warm_speedup:.2f}x warm over one "
        f"sequential engine per relation; replica drift {replica_drift:.1e}, "
        f"shed demo refused {shed_report.stats.shed}/{len(queries)}")
    return {
        "text": text,
        "speedup": warm_speedup,
        "cold_speedup": cold_speedup,
        "max_estimate_drift": drift,
        "replica_drift": replica_drift,
        "warm_drift": warm_drift,
        "replicas": scale.serve_repl_replicas,
        "hot_queries": hot_queries,
        "num_queries": len(queries),
        "shed": warm.stats.shed,
        "shed_demo": shed_report.stats.shed,
        "shed_demo_served": shed_report.stats.num_queries,
        "result_cache": warm.stats.result_cache,
        "result_cache_hits": warm.result_cache_hits,
        "sequential_wall_s": sequential_s,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "sequential": sequential.stats.as_dict(),
        "fleet_cold": cold.stats.as_dict(),
        "fleet_warm": warm.stats.as_dict(),
        "hot_route": hot_stats,
        "estimates": [result.selectivity for result in warm.results],
    }


def serve_stream(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: end-to-end latency SLOs under paced bursty arrivals.

    A bursty workload (the hot relation's queries arrive in uninterrupted
    runs of ``serve_stream_burst``, see
    :func:`repro.serve.generate_bursty_workload`) is streamed query-by-query
    with a *paced* arrival process: a hybrid
    :class:`repro.serve.VirtualClock` rides on the real clock, and every
    submission advances it by one measured per-query dispatch cost — so
    queries genuinely queue in partially filled micro-batches (in clock
    terms) without the benchmark sleeping through the gaps, and the pacing
    is calibrated to the host.  The same paced workload is served several
    ways over the same trained models (conditional caches off):

    * ``fixed`` — a plain :class:`repro.serve.FleetRouter` at the maximum
      micro-batch size.  Its measured hot-route **end-to-end** p95 (queueing
      delay + dispatch) calibrates the stated SLO:
      ``serve_stream_slo_fraction`` of it.
    * ``dispatch-*`` — a :class:`repro.serve.StreamingRouter` with
      ``slo_scope="dispatch"`` and no flush timeout: the **pre-fix**
      accounting, steering micro-batch sizes against dispatch latency
      alone.  At steady state its dispatch p95 sits comfortably under the
      SLO — while the end-to-end latency its callers observe still misses
      it, because time spent waiting for a batch to fill is neither
      measured nor bounded.
    * ``e2e-*`` — the fix: ``slo_scope="e2e"`` (the controller observes
      queue wait + dispatch) plus a flush deadline of
      ``serve_stream_flush_fraction`` of the SLO bounding how long a
      partial batch may linger.  The warmup pass shows the controller
      shrinking from the maximum; the steady pass must meet the end-to-end
      SLO.
    * ``streamed-shuffled`` — the e2e configuration with a *shuffled*
      arrival order and pre-assigned indices: streaming ≡ batch.

    Every mode's estimates are compared against the unbatched
    :func:`repro.serve.run_fleet_sequential` baseline — adaptive batch
    boundaries, timeout flushes, pacing and shuffled streaming must not
    move a single number.

    The headline claim: **dispatch-only SLO accounting is dishonest** — the
    dispatch-scoped controller reports a dispatch p95 under the SLO while
    its end-to-end p95 misses it; scoring the controller on end-to-end
    latency (and bounding tail wait with the flush timeout) makes the fleet
    actually meet the SLO a submitter experiences.
    """
    from ..data import make_sessions, make_users
    from ..serve import (
        FleetRouter,
        ModelRegistry,
        StreamingRouter,
        VirtualClock,
        generate_bursty_workload,
        run_fleet_sequential,
        stream_workload,
    )

    scale = scale or active_scale()
    config = NaruConfig(epochs=scale.serve_stream_epochs, hidden_sizes=(64, 64),
                        batch_size=256,
                        progressive_samples=scale.serve_stream_samples, seed=0)
    registry = ModelRegistry(default_config=config)
    registry.register_table(make_users(scale.serve_stream_users))
    registry.register_table(make_sessions(scale.serve_stream_rows,
                                          num_users=scale.serve_stream_users))
    registry.fit_all()

    hot = scale.serve_stream_hot_fraction
    queries = generate_bursty_workload(
        {name: registry.relation(name) for name in registry.names},
        scale.serve_stream_queries, hot="sessions",
        burst_size=scale.serve_stream_burst, min_filters=2, max_filters=5,
        seed=0, weights={"users": 1.0 - hot, "sessions": hot})
    hot_queries = sum(query.table == "sessions" for query in queries)
    max_batch = scale.serve_stream_max_batch

    baseline = run_fleet_sequential(registry, queries,
                                    num_samples=scale.serve_stream_samples,
                                    seed=0)

    # Calibrate the arrival pacing: one unpaced max-batch probe measures the
    # host's per-query dispatch cost, and queries then arrive one such cost
    # apart — fast hosts get tight pacing, slow hosts loose, and the
    # queueing dynamics stay comparable everywhere.
    probe = FleetRouter(registry, batch_size=max_batch,
                        num_samples=scale.serve_stream_samples,
                        use_cache=False, seed=0).run(queries)
    arrival_gap_ms = (probe.stats.routes["sessions"]["latency_ms"]["p95"]
                      / max_batch)

    def paced_clock() -> VirtualClock:
        return VirtualClock(base=time.perf_counter)

    def paced(router, order=None):
        return _timed(stream_workload, router, queries, arrival_order=order,
                      advance_ms=arrival_gap_ms)

    fixed_router = FleetRouter(registry, batch_size=max_batch,
                               num_samples=scale.serve_stream_samples,
                               use_cache=False, seed=0, clock=paced_clock())
    fixed, fixed_s = paced(fixed_router)
    fixed_e2e_p95 = fixed.stats.routes["sessions"]["e2e_ms"]["p95"]
    slo_ms = fixed_e2e_p95 * scale.serve_stream_slo_fraction
    flush_after_ms = slo_ms * scale.serve_stream_flush_fraction

    def adaptive_router(slo_scope: str, flush: float | None) -> StreamingRouter:
        return StreamingRouter(registry, batch_size=max_batch,
                               num_samples=scale.serve_stream_samples,
                               use_cache=False, seed=0, slo_ms=slo_ms,
                               adaptive=True, slo_scope=slo_scope,
                               flush_after_ms=flush, clock=paced_clock())

    # The pre-fix configuration: dispatch-only accounting, no flush bound.
    dispatch_router = adaptive_router("dispatch", None)
    dispatch_warmup, dispatch_warmup_s = paced(dispatch_router)
    dispatch_steady, dispatch_steady_s = paced(dispatch_router)

    # The fix: the controller observes end-to-end latency and the flush
    # deadline bounds how long a partial batch may linger.
    e2e_router = adaptive_router("e2e", flush_after_ms)
    e2e_warmup, e2e_warmup_s = paced(e2e_router)
    e2e_steady, e2e_steady_s = paced(e2e_router)

    shuffle_router = adaptive_router("e2e", flush_after_ms)
    order = np.random.default_rng(1).permutation(len(queries)).tolist()
    streamed, streamed_s = paced(shuffle_router, order)

    drift = max(
        float(np.max(np.abs(report.selectivities - baseline.selectivities)))
        for report in (fixed, dispatch_warmup, dispatch_steady, e2e_warmup,
                       e2e_steady, streamed))

    def hot_latencies(report) -> dict:
        stats = report.stats.routes["sessions"]
        return {"dispatch_p95_ms": stats["latency_ms"]["p95"],
                "queue_wait_p95_ms": stats["queue_wait_ms"]["p95"],
                "e2e_p95_ms": stats["e2e_ms"]["p95"]}

    dispatch_scoped = hot_latencies(dispatch_steady)
    e2e_scoped = hot_latencies(e2e_steady)
    rows = []
    for mode, report, wall_s in (
            ("fixed", fixed, fixed_s),
            ("dispatch-warmup", dispatch_warmup, dispatch_warmup_s),
            ("dispatch-steady", dispatch_steady, dispatch_steady_s),
            ("e2e-warmup", e2e_warmup, e2e_warmup_s),
            ("e2e-steady", e2e_steady, e2e_steady_s),
            ("streamed-shuffled", streamed, streamed_s)):
        hot_stats = report.stats.routes["sessions"]
        rows.append({
            "mode": mode,
            "dispatch_p95_ms": hot_stats["latency_ms"]["p95"],
            "queue_p95_ms": hot_stats["queue_wait_ms"]["p95"],
            "e2e_p95_ms": hot_stats["e2e_ms"]["p95"],
            "timeout_flushes": hot_stats["timeout_flushes"],
            "queries_per_second": len(queries) / wall_s if wall_s > 0 else 0.0,
            "batches": hot_stats["num_batches"],
        })
    text = format_series(
        rows, ["mode", "dispatch_p95_ms", "queue_p95_ms", "e2e_p95_ms",
               "timeout_flushes", "queries_per_second", "batches"],
        f"End-to-end SLOs + streaming ({hot_queries}/{len(queries)} queries "
        f"on sessions in bursts of {scale.serve_stream_burst}, max batch "
        f"{max_batch}, arrivals paced {arrival_gap_ms:.1f} ms apart): stated "
        f"e2e p95 SLO {slo_ms:.1f} ms (= "
        f"{scale.serve_stream_slo_fraction:.0%} of fixed e2e p95 "
        f"{fixed_e2e_p95:.1f} ms), flush timeout {flush_after_ms:.1f} ms — "
        f"dispatch-only steering reports dispatch p95 "
        f"{dispatch_scoped['dispatch_p95_ms']:.1f} ms "
        f"({'meets' if dispatch_scoped['dispatch_p95_ms'] <= slo_ms else 'misses'}) "
        f"but delivers e2e p95 {dispatch_scoped['e2e_p95_ms']:.1f} ms "
        f"({'meets' if dispatch_scoped['e2e_p95_ms'] <= slo_ms else 'misses'}); "
        f"e2e-scoped steering delivers e2e p95 "
        f"{e2e_scoped['e2e_p95_ms']:.1f} ms "
        f"({'meets' if e2e_scoped['e2e_p95_ms'] <= slo_ms else 'misses'}); "
        f"drift vs sequential baseline {drift:.1e}")
    return {
        "text": text,
        "slo_ms": slo_ms,
        "slo_fraction": scale.serve_stream_slo_fraction,
        "flush_after_ms": flush_after_ms,
        "flush_fraction": scale.serve_stream_flush_fraction,
        "arrival_gap_ms": arrival_gap_ms,
        "fixed_e2e_p95_ms": fixed_e2e_p95,
        "dispatch_scoped": dispatch_scoped,
        "e2e_scoped": e2e_scoped,
        "dispatch_scoped_meets_dispatch_slo":
            dispatch_scoped["dispatch_p95_ms"] <= slo_ms,
        "dispatch_scoped_meets_e2e_slo":
            dispatch_scoped["e2e_p95_ms"] <= slo_ms,
        "e2e_scoped_meets_e2e_slo": e2e_scoped["e2e_p95_ms"] <= slo_ms,
        "fixed_meets_e2e_slo": fixed_e2e_p95 <= slo_ms,
        "max_estimate_drift": drift,
        "max_batch": max_batch,
        "burst_size": scale.serve_stream_burst,
        "hot_queries": hot_queries,
        "num_queries": len(queries),
        "dispatch_batch_trace": list(
            dispatch_warmup.stats.routes["sessions"]["batch_trace"] or []),
        "e2e_batch_trace": list(
            e2e_warmup.stats.routes["sessions"]["batch_trace"] or []),
        "dispatch_controller": dispatch_router.controller("sessions").as_dict(),
        "e2e_controller": e2e_router.controller("sessions").as_dict(),
        "modes": rows,
        "fixed": fixed.stats.as_dict(),
        "dispatch_steady": dispatch_steady.stats.as_dict(),
        "e2e_steady": e2e_steady.stats.as_dict(),
        "streamed": streamed.stats.as_dict(),
        "estimates": [result.selectivity for result in e2e_steady.results],
    }


def serve_procfleet(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: cross-process sharded serving with a ProcessFleet.

    The same mixed three-relation workload (users, sessions, their equi-join)
    is served three ways over the same trained models, conditional caches off
    so the process fleet's per-engine caches cannot differ from the router's
    group-shared ones:

    * ``sequential`` — one unbatched, uncached sampler pass per query,
    * ``fleet`` — the in-process :class:`repro.serve.FleetRouter` with every
      relation at ``serve_proc_workers`` replicas,
    * ``procfleet`` — a :class:`repro.serve.ProcessFleet` of
      ``serve_proc_workers`` OS worker processes hosting those same replicas
      (one per worker), models shipped via :mod:`repro.nn.serialization`.

    Every run keys each query's random stream by ``(seed, global workload
    index)``, so the process boundary must not change a single bit:
    ``fleet_drift`` compares the process fleet against the in-process router
    bit-for-bit, and a final ``batch_size=1`` process-fleet pass must match
    :func:`repro.serve.run_fleet_sequential` exactly
    (``max_estimate_drift == 0.0``).

    Throughput is reported two ways because CI hosts may expose a single
    core, where OS processes cannot overlap in wall-clock time:
    ``wall_speedup`` is honest host wall-clock, while the headline
    ``speedup`` is *capacity* — the fleet's critical path is the largest
    per-worker busy-CPU time (:func:`time.process_time`, immune to
    time-slice preemption), i.e. the wall-clock the same shard layout
    delivers once each worker owns a core.  Both sides are measured on a
    *warm* second pass: a freshly forked worker's first pass pays one-time
    costs (copy-on-write page faults, allocator growth, BLAS warm-up) that
    say nothing about steady-state serving; the cold passes are recorded
    alongside.  ``host_cpus`` is recorded so a reader can tell which regime
    produced the numbers.
    """
    from ..data import JoinSpec, make_sessions, make_users
    from ..serve import (
        FleetRouter,
        ModelRegistry,
        ProcessFleet,
        generate_mixed_workload,
        run_fleet_sequential,
    )

    scale = scale or active_scale()
    workers = scale.serve_proc_workers
    # (32, 32) hidden layers, not the (64, 64) of the in-process serving
    # benches: N workers time-slicing a small CI host each keep a private
    # copy of the model, and the smaller working set stays cache-resident
    # across context switches — the capacity numbers measure serving, not
    # the host's L2.
    config = NaruConfig(epochs=scale.serve_proc_epochs, hidden_sizes=(32, 32),
                        batch_size=256,
                        progressive_samples=scale.serve_proc_samples, seed=0)
    registry = ModelRegistry(default_config=config)
    registry.register_table(make_users(scale.serve_proc_users))
    registry.register_table(make_sessions(scale.serve_proc_rows,
                                          num_users=scale.serve_proc_users))
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))
    registry.fit_all()
    # One replica of every relation per worker: each worker serves the whole
    # fleet, so micro-batch composition matches the in-process router's and
    # the bit-exactness comparison below is meaningful.
    for name in registry.names:
        registry.set_replicas(name, workers)

    queries = generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names},
        scale.serve_proc_queries, min_filters=2, max_filters=5, seed=0)

    sequential, sequential_s = _timed(
        lambda: run_fleet_sequential(registry, queries,
                                     num_samples=scale.serve_proc_samples,
                                     seed=0))

    router = FleetRouter(registry, batch_size=scale.serve_proc_batch_size,
                         num_samples=scale.serve_proc_samples,
                         use_cache=False, seed=0)
    _, fleet_cold_s = _timed(router.run, queries)
    fleet, fleet_s = _timed(router.run, queries)       # steady state

    proc_fleet, spawn_s = _timed(
        lambda: ProcessFleet(registry, workers=workers,
                             batch_size=scale.serve_proc_batch_size,
                             num_samples=scale.serve_proc_samples,
                             use_cache=False, seed=0))
    try:
        _, proc_cold_s = _timed(proc_fleet.run, queries)
        proc, proc_s = _timed(proc_fleet.run, queries)  # steady state
    finally:
        proc_fleet.close()
    worker_stats = proc.stats.workers or {}
    critical_path_s = max(
        (stats["busy_cpu_ms"] for stats in worker_stats.values()),
        default=0.0) / 1000.0

    # Determinism pass: batch_size=1 with caches off walks the exact code
    # path of the sequential baseline, just on the far side of a pipe.
    with ProcessFleet(registry, workers=workers, batch_size=1,
                      num_samples=scale.serve_proc_samples,
                      use_cache=False, seed=0) as exact_fleet:
        exact = exact_fleet.run(queries)

    drift = float(np.max(np.abs(exact.selectivities
                                - sequential.selectivities)))
    batched_drift = float(np.max(np.abs(fleet.selectivities
                                        - sequential.selectivities)))
    fleet_drift = float(np.max(np.abs(proc.selectivities
                                      - fleet.selectivities)))
    wall_speedup = fleet_s / proc_s if proc_s > 0 else float("inf")
    speedup = (fleet_s / critical_path_s
               if critical_path_s > 0 else float("inf"))

    rows = [
        {"mode": "sequential", "wall_s": sequential_s,
         "queries_per_second": len(queries) / sequential_s},
        {"mode": "fleet", "wall_s": fleet_s,
         "queries_per_second": len(queries) / fleet_s},
        {"mode": "procfleet-wall", "wall_s": proc_s,
         "queries_per_second": len(queries) / proc_s},
        {"mode": "procfleet-capacity", "wall_s": critical_path_s,
         "queries_per_second": (len(queries) / critical_path_s
                                if critical_path_s > 0 else float("inf"))},
    ]
    text = format_series(
        rows, ["mode", "wall_s", "queries_per_second"],
        f"Cross-process fleet ({workers} workers x {len(registry)} "
        f"relations, {len(queries)} queries, batch="
        f"{scale.serve_proc_batch_size}, host_cpus={os.cpu_count()}): "
        f"capacity {speedup:.2f}x / wall {wall_speedup:.2f}x over the "
        f"single-process fleet; process-boundary drift {fleet_drift:.1e}, "
        f"batch=1 drift vs sequential {drift:.1e}")
    return {
        "text": text,
        "speedup": speedup,
        "wall_speedup": wall_speedup,
        "max_estimate_drift": drift,
        "batched_drift": batched_drift,
        "fleet_drift": fleet_drift,
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "spawn_s": spawn_s,
        "sequential_wall_s": sequential_s,
        "fleet_cold_s": fleet_cold_s,
        "fleet_wall_s": fleet_s,
        "procfleet_cold_s": proc_cold_s,
        "procfleet_wall_s": proc_s,
        "critical_path_s": critical_path_s,
        "sequential_qps": len(queries) / sequential_s,
        "fleet_qps": len(queries) / fleet_s,
        "wall_qps": len(queries) / proc_s,
        "capacity_qps": (len(queries) / critical_path_s
                         if critical_path_s > 0 else float("inf")),
        "worker_stats": worker_stats,
        "num_queries": len(queries),
        "sequential": sequential.stats.as_dict(),
        "fleet": fleet.stats.as_dict(),
        "procfleet": proc.stats.as_dict(),
        "estimates": [result.selectivity for result in proc.results],
    }


def serve_refresh(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: live refresh of a serving fleet under data shift.

    Table 8 measures stale vs refreshed *estimators*; this experiment runs
    the same partition-by-partition ingest protocol against a *serving
    fleet* — a :class:`repro.serve.FleetRouter` with an epoch-keyed result
    cache, fed through :class:`repro.serve.RefreshController`.  One Naru
    model is built on the full table's dictionaries, trained on partition 1
    and registered behind the router; then every remaining partition of a
    :class:`repro.data.PartitionedIngest` is ingested through the controller
    (bumping the relation's data epoch and scoring the drift of the incoming
    rows), with the workload replayed after each ingest while the fleet
    serves *stale* — so the measured q-error degrades exactly as the
    relation drifts away from the model.  A single fine-tune refresh then
    swaps the next model version in atomically and the same workload
    recovers.

    Two correctness counters ride along.  ``invalid_cache_hits`` compares
    the long-lived router's post-refresh estimates bit-for-bit against a
    cold router built over the refreshed registry: any cache entry (result
    cache or conditional cache) that unlawfully survived an epoch bump would
    surface here as a differing bit, so the count must be exactly 0.
    ``result_cache_stale_rejects`` counts the epoch-mismatched result-cache
    entries that lookups *refused* to serve — it must be positive, proving
    the replays actually collided with pre-bump cache state rather than
    never touching it.
    """
    from ..data.shift import PartitionedIngest, encode_with_dictionaries
    from ..serve import FleetRouter, ModelRegistry, RefreshController

    scale = scale or active_scale()
    table = make_dmv(scale.serve_refresh_rows)
    ingest = PartitionedIngest(table, "valid_date",
                               scale.serve_refresh_partitions)
    visible = ingest.ingest_next()

    # Full-table dictionaries ("domain from user annotation", §6.7.3), model
    # trained only on the first partition — the serving twin of table8.
    config = NaruConfig(hidden_sizes=(64, 64), epochs=0, batch_size=256,
                        progressive_samples=scale.serve_refresh_samples,
                        seed=0)
    estimator = NaruEstimator(table, config)
    estimator.refresh(encode_with_dictionaries(table, visible),
                      epochs=scale.serve_refresh_epochs)
    estimator._fitted = True
    estimator.set_row_count(visible.num_rows)

    registry = ModelRegistry(default_config=config)
    registry.register_table(visible, name="dmv", estimator=estimator)
    controller = RefreshController(
        registry, max_staleness=0,
        refresh_epochs=scale.serve_refresh_fine_tune_epochs)

    generator = WorkloadGenerator(visible, min_filters=5,
                                  max_filters=min(11, table.num_columns),
                                  seed=900)
    queries = [query.qualified("dmv")
               for query in generator.generate(scale.serve_refresh_queries)]

    def router_for() -> "FleetRouter":
        return FleetRouter(registry,
                           batch_size=scale.serve_refresh_batch_size,
                           num_samples=scale.serve_refresh_samples, seed=0,
                           result_cache=True, cache_entries=8_192)

    router = router_for()

    def measure(phase: str):
        report, elapsed = _timed(router.run, queries)
        current = registry.relation("dmv")
        errors = [q_error(result.cardinality,
                          true_selectivity(current, result.query)
                          * current.num_rows)
                  for result in report.results]
        entry = {
            "phase": phase,
            "partitions": ingest.num_ingested,
            "staleness": registry.staleness("dmv"),
            "drift_bits": controller.last_drift_bits.get("dmv") or 0.0,
            "p90": float(np.quantile(errors, 0.90)),
            "max": summarize_errors(errors).maximum,
            "elapsed_s": elapsed,
        }
        return entry, report

    rows = []
    fresh, _ = measure("fresh")
    rows.append(fresh)
    while ingest.remaining():
        part = ingest.partitions[ingest.num_ingested]
        ingest.ingest_next()
        record = controller.ingest("dmv", part)
        entry, _ = measure(f"stale+{record['staleness']}")
        rows.append(entry)
    last_stale = rows[-1]

    controller.refresh("dmv")
    refreshed, post_report = measure("refreshed")
    rows.append(refreshed)

    # The zero-stale-hit proof: a cold router over the refreshed registry
    # has never seen a single pre-bump cache entry, so any surviving stale
    # state in the long-lived router shows up as a differing estimate.
    cold_report = router_for().run(queries)
    invalid_cache_hits = int(np.count_nonzero(
        post_report.selectivities != cold_report.selectivities))
    cache_stats = router.result_cache.stats.as_dict()
    stale_rejects = cache_stats["lifetime"]["stale_rejects"]

    text = format_series(
        rows, ["phase", "partitions", "staleness", "drift_bits", "p90",
               "max", "elapsed_s"],
        f"Live refresh under partitioned ingest (DMV by date, "
        f"{scale.serve_refresh_partitions} partitions, "
        f"{scale.serve_refresh_queries} queries): stale p90 "
        f"{fresh['p90']:.2f} -> {last_stale['p90']:.2f}, refreshed "
        f"{refreshed['p90']:.2f}; invalid cache hits {invalid_cache_hits}, "
        f"stale result-cache entries rejected {stale_rejects}")
    return {
        "text": text,
        "results": rows,
        "fresh_p90": fresh["p90"],
        "fresh_max": fresh["max"],
        "stale_p90": last_stale["p90"],
        "stale_max": last_stale["max"],
        "refreshed_p90": refreshed["p90"],
        "refreshed_max": refreshed["max"],
        "invalid_cache_hits": invalid_cache_hits,
        "result_cache_stale_rejects": stale_rejects,
        "result_cache": cache_stats,
        "epochs": post_report.stats.epochs,
        "max_staleness_served": max(entry["staleness"] for entry in rows),
        "num_queries": len(queries),
        "estimates": [result.selectivity for result in post_report.results],
    }


def serve_loadgen(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: the latency-vs-offered-load curve and the SLO knee.

    Every other serving benchmark is closed-loop — the next query waits for
    the previous batch, so the fleet can never be offered more than it
    completes and overload is invisible.  This one is **open-loop**
    (:mod:`repro.serve.loadgen`): arrivals land at a configured offered rate
    regardless of completion rate, paced on a hybrid
    :class:`repro.serve.VirtualClock` riding the real clock.

    Calibration first, so the claim is hardware-independent: a closed-loop
    probe at the full micro-batch size measures the host's capacity
    (completions per wall-second) and its e2e p95; the stated SLO is
    ``serve_loadgen_slo_multiplier`` times that p95, and the sweep offers
    ``serve_loadgen_rate_fractions`` times that capacity.  Each rung of the
    ladder gets a fresh admission-bounded router (``max_pending``,
    ``overflow="shed"``) and its own Poisson arrival sequence; the rows
    trace offered vs achieved throughput, shed counts, the pending
    high-water mark and the latency percentiles, and
    :func:`repro.serve.locate_knee` reads off the highest offered rate whose
    e2e p95 still meets the SLO.

    On top of the curve, three chaos drills at the mid rate, each asserted
    **degraded-not-collapsed** (:func:`repro.serve.assert_degraded_not_collapsed`:
    bounded queue growth, typed counted shedding, zero estimate drift on
    every completed query vs the unloaded sequential baseline):

    * ``slow_replica`` — one replica stalls ``delay_ms`` per dispatch from a
      quarter into the run (injected via the engine ``batch_hook``),
    * ``cache_wipe`` — every cache layer cleared mid-run,
    * ``kill_worker`` — a :class:`repro.serve.ProcessFleet` worker is
      SIGKILLed mid-stream and must surface a typed
      :class:`repro.serve.WorkerError`, not a hang.

    The arrival traces themselves are checked replayable: record → save →
    load → save must be byte-identical, and the loaded trace must reproduce
    the arrival sequence exactly.
    """
    from ..data import make_sessions, make_users
    from ..serve import (
        ArrivalTrace,
        CacheWipe,
        FleetRouter,
        ModelRegistry,
        ProcessFleet,
        SlowReplica,
        VirtualClock,
        assert_degraded_not_collapsed,
        generate_mixed_workload,
        locate_knee,
        run_fleet_sequential,
        run_kill_worker_drill,
        run_open_loop,
        sweep_offered_load,
    )

    scale = scale or active_scale()
    config = NaruConfig(epochs=scale.serve_loadgen_epochs,
                        hidden_sizes=(64, 64), batch_size=256,
                        progressive_samples=scale.serve_loadgen_samples,
                        seed=0)
    registry = ModelRegistry(default_config=config)
    registry.register_table(make_users(scale.serve_loadgen_users),
                            replicas=scale.serve_loadgen_replicas)
    registry.register_table(
        make_sessions(scale.serve_loadgen_rows,
                      num_users=scale.serve_loadgen_users),
        replicas=scale.serve_loadgen_replicas)
    registry.fit_all()
    queries = generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names},
        scale.serve_loadgen_queries, min_filters=2, max_filters=5, seed=0)

    # Trace record/replay: byte-stable files, exact arrival reproduction.
    recorded = ArrivalTrace.record("poisson", rate_qps=100.0, duration_s=2.0,
                                   seed=7)
    first_bytes = recorded.to_json()
    replayed = None
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.json")
        recorded.save(path)
        replayed = ArrivalTrace.load(path)
    trace_byte_stable = (replayed.to_json() == first_bytes
                         and replayed.timestamps == recorded.timestamps)

    # Closed-loop probe: the host's capacity (completions per wall-second at
    # the full batch size) and the service-time e2e p95 the SLO scales from.
    probe_router = FleetRouter(registry,
                               batch_size=scale.serve_loadgen_batch_size,
                               num_samples=scale.serve_loadgen_samples,
                               seed=0)
    probe, probe_s = _timed(probe_router.run, queries)
    capacity_qps = len(queries) / probe_s if probe_s > 0 else float("inf")
    probe_e2e_p95 = probe.stats.e2e_ms["p95"]
    slo_ms = probe_e2e_p95 * scale.serve_loadgen_slo_multiplier
    # A partial micro-batch may linger at most one probe-p95 before it is
    # force-dispatched, so low offered rates are not dominated by
    # batch-fill waiting (which would invert the curve).
    flush_after_ms = probe_e2e_p95

    duration_s = scale.serve_loadgen_duration_s
    rates = [fraction * capacity_qps
             for fraction in scale.serve_loadgen_rate_fractions]

    def fresh_router() -> FleetRouter:
        return FleetRouter(registry,
                           batch_size=scale.serve_loadgen_batch_size,
                           num_samples=scale.serve_loadgen_samples, seed=0,
                           max_pending=scale.serve_loadgen_max_pending,
                           overflow="shed", flush_after_ms=flush_after_ms,
                           clock=VirtualClock(base=time.perf_counter))

    rows = sweep_offered_load(fresh_router, queries, rates,
                              duration_s=duration_s, process="poisson",
                              seed=0)
    for fraction, row in zip(scale.serve_loadgen_rate_fractions, rows):
        row["rate_fraction"] = fraction
    knee = locate_knee(rows, slo_ms)

    # Chaos drills at the mid offered rate: each must degrade, not collapse.
    mid_rate = rates[len(rates) // 2]
    chaos_trace = ArrivalTrace.record("poisson", rate_qps=mid_rate,
                                      duration_s=duration_s, seed=1)
    expanded = [queries[i % len(queries)] for i in range(len(chaos_trace))]
    chaos_baseline = run_fleet_sequential(
        registry, expanded, num_samples=scale.serve_loadgen_samples, seed=0)
    scenarios = {}
    for name, scenario in (
            ("slow_replica", SlowReplica("sessions", delay_ms=20.0,
                                         at_fraction=0.25)),
            ("cache_wipe", CacheWipe(at_fraction=0.5))):
        outcome = run_open_loop(fresh_router(), queries, chaos_trace,
                                scenario=scenario)
        scenarios[name] = assert_degraded_not_collapsed(
            outcome, baseline=chaos_baseline,
            max_pending=scale.serve_loadgen_max_pending)
        scenarios[name]["e2e_p95_ms"] = outcome.e2e_p95_ms

    drill_queries = expanded[:max(4 * scale.serve_loadgen_batch_size
                                  * scale.serve_loadgen_workers, 64)]
    fleet = ProcessFleet(registry, workers=scale.serve_loadgen_workers,
                         batch_size=scale.serve_loadgen_batch_size,
                         num_samples=scale.serve_loadgen_samples, seed=0,
                         recv_timeout_s=30.0)
    try:
        drill = run_kill_worker_drill(fleet, drill_queries)
    finally:
        fleet.close()
    scenarios["kill_worker"] = drill

    knee_note = (f"knee at {knee['knee_qps']:.1f} qps offered"
                 if knee["knee_qps"] is not None
                 else "no offered rate met the SLO")
    over_note = (f"first over at {knee['first_over_qps']:.1f} qps"
                 if knee["first_over_qps"] is not None
                 else "every swept rate met the SLO")
    text = format_series(
        rows, ["rate_fraction", "offered_qps", "achieved_qps", "completed",
               "shed", "peak_pending", "service_p95_ms", "e2e_p95_ms"],
        f"Latency vs offered load (Poisson arrivals over {duration_s:g} s "
        f"windows, {len(queries)} distinct queries cycled, "
        f"max_pending {scale.serve_loadgen_max_pending}, overflow shed): "
        f"closed-loop capacity {capacity_qps:.1f} qps, e2e p95 SLO "
        f"{slo_ms:.1f} ms (= {scale.serve_loadgen_slo_multiplier:g}x probe "
        f"e2e p95 {probe_e2e_p95:.1f} ms, flush timeout "
        f"{flush_after_ms:.1f} ms; e2e is measured from each query's "
        f"*scheduled* arrival) -> {knee_note}, {over_note}")
    chaos_lines = [
        f"chaos @ {mid_rate:.1f} qps offered:",
        (f"  slow_replica: completed {scenarios['slow_replica']['completed']}"
         f", shed {scenarios['slow_replica']['shed']}, peak pending "
         f"{scenarios['slow_replica']['peak_pending']}, drift "
         f"{scenarios['slow_replica']['max_estimate_drift']:.1e} — degraded,"
         " not collapsed"),
        (f"  cache_wipe:   completed {scenarios['cache_wipe']['completed']}"
         f", shed {scenarios['cache_wipe']['shed']}, peak pending "
         f"{scenarios['cache_wipe']['peak_pending']}, drift "
         f"{scenarios['cache_wipe']['max_estimate_drift']:.1e} — degraded,"
         " not collapsed"),
        (f"  kill_worker:  worker {drill['killed_worker']} SIGKILLed after "
         f"{drill['kill_after']}/{drill['submitted']} submissions -> "
         f"{drill['error_type']} (exit {drill['error_exit_code']}) in "
         f"{drill['wall_s']:.2f} s — typed, no hang"),
        f"trace record/replay byte-stable: {trace_byte_stable}",
    ]
    text = text + "\n" + "\n".join(chaos_lines)
    return {
        "text": text,
        "capacity_qps": capacity_qps,
        "probe_e2e_p95_ms": probe_e2e_p95,
        "slo_ms": slo_ms,
        "slo_multiplier": scale.serve_loadgen_slo_multiplier,
        "flush_after_ms": flush_after_ms,
        "duration_s": duration_s,
        "rate_fractions": list(scale.serve_loadgen_rate_fractions),
        "max_pending": scale.serve_loadgen_max_pending,
        "curve": rows,
        "knee": knee,
        "chaos_offered_qps": mid_rate,
        "scenarios": scenarios,
        "trace_byte_stable": trace_byte_stable,
        "num_queries": len(queries),
        "workers": scale.serve_loadgen_workers,
    }


def serve_ensemble(scale: ExperimentScale | None = None) -> dict:
    """Beyond the paper: a widened query language served by estimator ensembles.

    The paper's workload is purely conjunctive.  This benchmark widens it —
    a ``dnf_fraction`` share of the workload becomes DNF disjunctions
    (branch counts alternating between 2 and 6) and a ``like_fraction``
    share becomes ``LIKE 'x%'`` string prefixes — and serves it through
    per-relation *ensembles*: the Naru primary answers prefixes (one more
    valid-code mask) and small disjunctions by inclusion–exclusion, while
    disjunctions above ``max_dnf_branches`` route to a
    :class:`repro.estimators.SamplingEstimator` fallback registered next to
    each model.  Three claims are asserted exactly, not statistically:

    * **routing** — every query lands where the capability matrix says it
      must: conjunctions/prefixes/2-branch DNF on the Naru primary,
      6-branch DNF on the fallback, nothing unroutable;
    * **determinism** — the routed fleet and a sequential per-query pass
      agree bit-for-bit (max drift exactly 0.0), conjunctions included, so
      registering fallbacks perturbs nothing the paper measures;
    * **inclusion–exclusion identity** — on a small relation where the
      per-term estimates are *exact*, the expansion reproduces the true
      union selectivity to float round-off (``ie_oracle_gap <= 1e-9``),
      checking the expansion itself with no estimation noise on top.

    The reported table is the per-estimator ensemble breakdown: queries
    served, median/p95 q-error, and p95 end-to-end latency for the Naru
    primaries and the sampling fallbacks side by side.
    """
    from ..data import make_sessions, make_users
    from ..query import true_selectivities
    from ..query.predicates import DNFQuery
    from ..query.shapes import QueryShape, query_shape
    from ..serve import (
        FleetRouter,
        ModelRegistry,
        generate_shape_workload,
        run_fleet_sequential,
    )

    scale = scale or active_scale()
    config = NaruConfig(epochs=scale.serve_ens_epochs, hidden_sizes=(64, 64),
                        batch_size=256,
                        progressive_samples=scale.serve_ens_samples, seed=0)
    registry = ModelRegistry(default_config=config)
    users = make_users(scale.serve_ens_users)
    sessions = make_sessions(scale.serve_ens_rows,
                             num_users=scale.serve_ens_users)
    for table in (users, sessions):
        registry.register_table(table, fallback=SamplingEstimator(
            table, sample_size=scale.serve_ens_fallback_sample, seed=0))
    registry.fit_all()

    queries = generate_shape_workload(
        {name: registry.relation(name) for name in registry.names},
        scale.serve_ens_queries, dnf_fraction=scale.serve_ens_dnf_fraction,
        like_fraction=scale.serve_ens_like_fraction, dnf_branches=(2, 6),
        seed=0)
    shape_mix = {}
    for query in queries:
        shape = query_shape(query).value
        shape_mix[shape] = shape_mix.get(shape, 0) + 1

    router = FleetRouter(registry, batch_size=scale.serve_ens_batch_size,
                         num_samples=scale.serve_ens_samples, seed=0)
    report = router.run(queries)
    sequential = run_fleet_sequential(registry, queries,
                                      num_samples=scale.serve_ens_samples,
                                      seed=0)
    drift = float(np.max(np.abs(report.selectivities -
                                sequential.selectivities)))

    # Routing audit against the capability matrix: the fallback serves
    # exactly the disjunctions whose branch count exceeds the Naru primary's
    # inclusion–exclusion bound, and nothing else.
    max_branches = registry.default_config.max_dnf_branches
    overflow = {index for index, query in enumerate(queries)
                if isinstance(query, DNFQuery)
                and len(query.branches) > max_branches}
    fallback_served = {result.index for result in report.results
                      if result.estimator.startswith("Sample(")}
    if fallback_served != overflow:
        raise AssertionError(
            f"fallback routing mismatch: expected indices {sorted(overflow)}, "
            f"served {sorted(fallback_served)}")

    # Per-estimator accuracy (exact truths from the executor, which unions
    # branch masks for DNF and masks prefixes like any comparison).
    truths: dict[int, float] = {}
    errors = []
    for result in report.results:
        relation = registry.relation(result.route)
        truth = true_selectivities(relation, [result.query])[0]
        truths[result.index] = float(truth * relation.num_rows)
        errors.append(q_error(result.cardinality, truths[result.index]))
    accuracy = report.accuracy_by_estimator(truths)
    latency = report.stats.estimators or {}

    # Inclusion–exclusion oracle identity: with exact per-term estimates the
    # expansion must reproduce the exact union selectivity to round-off.
    oracle_table = make_users(scale.serve_ens_oracle_rows)
    oracle_queries = [
        query for query in generate_shape_workload(
            {"users": oracle_table}, scale.serve_ens_oracle_queries,
            dnf_fraction=1.0, like_fraction=0.0, dnf_branches=(2, 3),
            min_filters=1, max_filters=2, seed=1)
        if isinstance(query, DNFQuery)]
    probe = SamplingEstimator(oracle_table, fraction=1.0, seed=0)
    ie_oracle_gap = 0.0
    for query in oracle_queries:
        exact_union = float(true_selectivities(oracle_table, [query])[0])
        expanded = probe._inclusion_exclusion(
            query, lambda term: float(true_selectivities(oracle_table,
                                                         [term])[0]))
        ie_oracle_gap = max(ie_oracle_gap, abs(expanded - exact_union))

    rows = []
    for name in sorted(set(accuracy) | set(latency)):
        acc = accuracy.get(name, {})
        lat = latency.get(name, {})
        e2e = lat.get("e2e_ms") or {}
        rows.append({
            "estimator": name,
            "queries": acc.get("num_queries", lat.get("num_queries", 0)),
            "median_qerror": acc.get("median_qerror", float("nan")),
            "p95_qerror": acc.get("p95_qerror", float("nan")),
            "e2e_p95_ms": e2e.get("p95", float("nan")),
        })
    mix_note = ", ".join(f"{count} {shape}"
                         for shape, count in sorted(shape_mix.items()))
    text = format_series(
        rows, ["estimator", "queries", "median_qerror", "p95_qerror",
               "e2e_p95_ms"],
        f"Estimator ensemble over a widened workload ({mix_note}; "
        f"max drift {drift:.1e}, I-E oracle gap {ie_oracle_gap:.1e})")
    return {
        "text": text,
        "shape_mix": shape_mix,
        "max_estimate_drift": drift,
        "ie_oracle_gap": ie_oracle_gap,
        "ie_oracle_queries": len(oracle_queries),
        "fallback_served": len(fallback_served),
        "overflow_dnf": len(overflow),
        "max_dnf_branches": max_branches,
        "accuracy_by_estimator": accuracy,
        "estimators": latency,
        "q_error_median": float(np.median(errors)),
        "q_error_p95": float(np.quantile(errors, 0.95)),
        "fleet": report.stats.as_dict(),
        "sequential": sequential.stats.as_dict(),
        "num_queries": len(queries),
        "estimates": [result.selectivity for result in report.results],
        "routes": [result.route for result in report.results],
    }
