"""Experiment scaling presets.

The paper's evaluation uses millions of rows, 2,000 queries per workload and a
GPU.  This reproduction trains NumPy models on a CPU, so every experiment
accepts a :class:`ExperimentScale` that controls dataset sizes, query counts
and training epochs.  Two presets are provided:

* ``SMOKE``  — minutes-scale runs used by the pytest benchmarks and CI,
* ``PAPER``  — larger runs closer to the published setup (hours on a laptop).

The active preset defaults to ``SMOKE`` and can be switched with the
``REPRO_SCALE`` environment variable (``smoke`` or ``paper``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "SMOKE", "PAPER", "active_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiments."""

    name: str
    dmv_rows: int
    conviva_a_rows: int
    conviva_b_rows: int
    num_queries: int
    ood_queries: int
    naru_epochs: int
    naru_hidden: tuple[int, ...]
    naru_batch_size: int
    naru_samples: tuple[int, ...]
    mscn_training_queries: int
    mscn_epochs: int
    kde_sample: int
    kde_feedback_queries: int
    sample_fraction: float
    latency_queries: int
    training_curve_epochs: int
    training_curve_queries: int
    oracle_queries: int
    shift_queries: int
    shift_partitions: int
    # Serving-throughput experiment (repro.serve); defaulted so existing
    # presets and overrides keep working unchanged.
    serve_rows: int = 2_000
    serve_queries: int = 64
    serve_samples: int = 1_500
    serve_batch_size: int = 16
    serve_epochs: int = 8
    # Multi-model fleet experiment (serve_multi): two base tables plus one
    # join relation behind a FleetRouter; defaulted for the same reason.
    serve_multi_rows: int = 3_000
    serve_multi_users: int = 400
    serve_multi_queries: int = 60
    serve_multi_samples: int = 800
    serve_multi_batch_size: int = 16
    serve_multi_epochs: int = 6
    # Replicated hot-relation experiment (serve_replicated): a skewed
    # workload hammers one relation served by N engine replicas behind an
    # admission-controlled router with a fleet result cache.
    serve_repl_rows: int = 3_000
    serve_repl_users: int = 300
    serve_repl_queries: int = 72
    serve_repl_samples: int = 800
    serve_repl_batch_size: int = 12
    serve_repl_epochs: int = 6
    serve_repl_replicas: int = 4
    serve_repl_hot_fraction: float = 0.75
    serve_repl_max_pending: int = 48
    # Streaming/SLO experiment (serve_stream): a bursty workload served with
    # a fixed max-size micro-batch vs an SLO-adaptive one, plus a
    # shuffled-arrival asyncio streaming pass proving streaming ≡ batch.
    serve_stream_rows: int = 3_000
    serve_stream_users: int = 300
    serve_stream_queries: int = 120
    serve_stream_samples: int = 500
    serve_stream_epochs: int = 6
    serve_stream_max_batch: int = 24
    serve_stream_burst: int = 12
    serve_stream_hot_fraction: float = 0.75
    #: The stated p95 end-to-end SLO, as a fraction of the measured
    #: fixed-batch end-to-end p95 — calibrated per machine so the
    #: benchmark's claim ("dispatch-only steering misses the e2e SLO the
    #: e2e-scoped controller meets") is hardware-independent.  0.35 keeps
    #: the SLO comfortably above what dispatch-only steering *reports*
    #: (so it appears healthy) while comfortably below what it *delivers*
    #: (dispatch + queueing delay) across converged-batch-size noise.
    serve_stream_slo_fraction: float = 0.35
    #: The flush deadline of the e2e-scoped run, as a fraction of the stated
    #: SLO: a partially filled micro-batch may spend at most this share of
    #: the latency budget waiting before it is force-dispatched.
    serve_stream_flush_fraction: float = 0.25
    # Cross-process fleet experiment (serve_procfleet): the same mixed
    # workload served by the single-process fleet and by a ProcessFleet of
    # serve_proc_workers OS processes (one replica per worker), reporting
    # wall-clock and critical-path capacity throughput plus estimate drift.
    serve_proc_rows: int = 2_500
    serve_proc_users: int = 300
    serve_proc_queries: int = 192
    serve_proc_samples: int = 600
    serve_proc_batch_size: int = 12
    serve_proc_epochs: int = 5
    serve_proc_workers: int = 4
    # Live-refresh experiment (serve_refresh): a PartitionedIngest replayed
    # against a fleet with an epoch-keyed result cache — the stale model's
    # q-error degrades partition by partition, one fine-tune refresh
    # recovers it, and a cold-router cross-check proves zero invalid cache
    # hits survived the epoch bumps.
    serve_refresh_rows: int = 3_000
    serve_refresh_queries: int = 48
    serve_refresh_samples: int = 600
    serve_refresh_batch_size: int = 12
    serve_refresh_epochs: int = 6
    serve_refresh_partitions: int = 4
    serve_refresh_fine_tune_epochs: int = 1
    # Open-loop load-generation experiment (serve_loadgen): a closed-loop
    # probe calibrates the host's capacity, then a ladder of offered rates
    # (fractions of that capacity) is swept open-loop to trace the
    # latency-vs-offered-load curve and locate the SLO knee, with chaos
    # scenarios (slow replica, cache wipe, worker kill) asserted
    # degraded-not-collapsed at the mid rate.
    serve_loadgen_rows: int = 2_000
    serve_loadgen_users: int = 200
    serve_loadgen_queries: int = 48
    serve_loadgen_samples: int = 400
    serve_loadgen_batch_size: int = 8
    serve_loadgen_epochs: int = 5
    serve_loadgen_replicas: int = 2
    serve_loadgen_max_pending: int = 32
    serve_loadgen_duration_s: float = 1.5
    #: Offered rates of the sweep, as multiples of the probed closed-loop
    #: capacity — spanning comfortably-under to far-over saturation so the
    #: knee always lies inside the swept range.
    serve_loadgen_rate_fractions: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
    #: The stated e2e p95 SLO, as a multiple of the closed-loop probe's e2e
    #: p95 — calibrated per machine (like serve_stream_slo_fraction) so the
    #: knee's existence is hardware-independent: generous enough that the
    #: lowest offered rates meet it, tight enough that overload misses it.
    serve_loadgen_slo_multiplier: float = 4.0
    serve_loadgen_workers: int = 2
    # Estimator-ensemble experiment (serve_ensemble): a widened workload —
    # DNF disjunctions and LIKE prefixes alongside plain conjunctions —
    # served by per-relation ensembles: Naru primaries answer small
    # disjunctions by inclusion–exclusion while many-branch disjunctions
    # route to a sampling fallback, with per-estimator accuracy/latency
    # columns and an exact inclusion–exclusion oracle identity check.
    serve_ens_rows: int = 2_400
    serve_ens_users: int = 300
    serve_ens_queries: int = 64
    serve_ens_samples: int = 600
    serve_ens_batch_size: int = 12
    serve_ens_epochs: int = 5
    serve_ens_fallback_sample: int = 1_024
    serve_ens_dnf_fraction: float = 0.25
    serve_ens_like_fraction: float = 0.25
    serve_ens_oracle_rows: int = 160
    serve_ens_oracle_queries: int = 12


SMOKE = ExperimentScale(
    name="smoke",
    dmv_rows=12_000,
    conviva_a_rows=9_000,
    conviva_b_rows=700,
    num_queries=100,
    ood_queries=80,
    naru_epochs=10,
    naru_hidden=(128, 128),
    naru_batch_size=128,
    naru_samples=(500, 1000),
    mscn_training_queries=250,
    mscn_epochs=15,
    kde_sample=600,
    kde_feedback_queries=40,
    sample_fraction=0.013,
    latency_queries=40,
    training_curve_epochs=5,
    training_curve_queries=25,
    oracle_queries=30,
    shift_queries=40,
    shift_partitions=5,
)

PAPER = ExperimentScale(
    name="paper",
    dmv_rows=120_000,
    conviva_a_rows=80_000,
    conviva_b_rows=4_000,
    num_queries=2_000,
    ood_queries=2_000,
    naru_epochs=20,
    naru_hidden=(256, 256, 256),
    naru_batch_size=512,
    naru_samples=(1000, 2000, 4000),
    mscn_training_queries=10_000,
    mscn_epochs=40,
    kde_sample=5_000,
    kde_feedback_queries=500,
    sample_fraction=0.013,
    latency_queries=500,
    training_curve_epochs=10,
    training_curve_queries=200,
    oracle_queries=50,
    shift_queries=200,
    shift_partitions=5,
    serve_rows=6_000,
    serve_queries=256,
    serve_samples=2_000,
    serve_batch_size=32,
    serve_epochs=15,
    serve_multi_rows=8_000,
    serve_multi_users=800,
    serve_multi_queries=192,
    serve_multi_samples=1_500,
    serve_multi_batch_size=32,
    serve_multi_epochs=12,
    serve_repl_rows=8_000,
    serve_repl_users=800,
    serve_repl_queries=240,
    serve_repl_samples=1_500,
    serve_repl_batch_size=24,
    serve_repl_epochs=12,
    serve_repl_replicas=4,
    serve_repl_hot_fraction=0.8,
    serve_repl_max_pending=96,
    serve_stream_rows=8_000,
    serve_stream_users=800,
    serve_stream_queries=360,
    serve_stream_samples=1_000,
    serve_stream_epochs=12,
    serve_stream_max_batch=32,
    serve_stream_burst=16,
    serve_stream_hot_fraction=0.8,
    serve_stream_slo_fraction=0.35,
    serve_proc_rows=8_000,
    serve_proc_users=800,
    serve_proc_queries=480,
    serve_proc_samples=1_200,
    serve_proc_batch_size=16,
    serve_proc_epochs=12,
    serve_proc_workers=4,
    serve_refresh_rows=10_000,
    serve_refresh_queries=200,
    serve_refresh_samples=1_200,
    serve_refresh_batch_size=16,
    serve_refresh_epochs=12,
    serve_refresh_partitions=5,
    serve_refresh_fine_tune_epochs=2,
    serve_loadgen_rows=6_000,
    serve_loadgen_users=600,
    serve_loadgen_queries=120,
    serve_loadgen_samples=800,
    serve_loadgen_batch_size=16,
    serve_loadgen_epochs=10,
    serve_loadgen_replicas=4,
    serve_loadgen_max_pending=64,
    serve_loadgen_duration_s=5.0,
    serve_loadgen_rate_fractions=(0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
    serve_loadgen_slo_multiplier=4.0,
    serve_loadgen_workers=4,
    serve_ens_rows=8_000,
    serve_ens_users=800,
    serve_ens_queries=192,
    serve_ens_samples=1_200,
    serve_ens_batch_size=16,
    serve_ens_epochs=12,
    serve_ens_fallback_sample=2_048,
    serve_ens_oracle_rows=240,
    serve_ens_oracle_queries=24,
)


def active_scale() -> ExperimentScale:
    """Return the preset selected by the ``REPRO_SCALE`` environment variable."""
    choice = os.environ.get("REPRO_SCALE", "smoke").lower()
    if choice == "paper":
        return PAPER
    if choice == "smoke":
        return SMOKE
    raise ValueError(f"unknown REPRO_SCALE value {choice!r}; use 'smoke' or 'paper'")
