"""Formatting helpers that print results in the layout of the paper's tables.

Nothing here computes anything: the functions take the structured results
produced by :mod:`repro.bench.harness` / :mod:`repro.bench.experiments` and
render fixed-width text tables (Tables 3, 4, 5, 8) or simple series listings
(Figures 4-8) so benchmark output can be compared side by side with the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..query.metrics import SELECTIVITY_BUCKETS, ErrorSummary

__all__ = [
    "format_error",
    "format_accuracy_table",
    "format_summary_table",
    "format_series",
    "format_latency_table",
]


def format_error(value: float) -> str:
    """Compact q-error formatting matching the paper (e.g. ``2·10^4``)."""
    if value != value:  # NaN
        return "-"
    if value >= 10_000:
        exponent = len(f"{int(value):d}") - 1
        mantissa = value / 10 ** exponent
        return f"{mantissa:.0f}e{exponent}"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def _summary_cells(summary: ErrorSummary) -> list[str]:
    return [format_error(summary.median), format_error(summary.p95),
            format_error(summary.p99), format_error(summary.maximum)]


def format_accuracy_table(results: Mapping[str, Mapping[str, ErrorSummary]],
                          title: str) -> str:
    """Render the Table 3 / Table 4 layout: estimators × selectivity buckets."""
    header_groups = {"high": "High (>2%)", "medium": "Medium (0.5-2%)", "low": "Low (<=0.5%)"}
    quantile_names = ["Med", "95th", "99th", "Max"]
    lines = [title, "=" * len(title)]
    header = f"{'Estimator':<16}"
    for bucket in SELECTIVITY_BUCKETS:
        header += f"| {header_groups[bucket]:<31}"
    lines.append(header)
    subheader = " " * 16
    for _ in SELECTIVITY_BUCKETS:
        subheader += "| " + "".join(f"{name:<8}" for name in quantile_names)
    lines.append(subheader)
    lines.append("-" * len(subheader))
    for estimator, buckets in results.items():
        row = f"{estimator:<16}"
        for bucket in SELECTIVITY_BUCKETS:
            cells = _summary_cells(buckets[bucket])
            row += "| " + "".join(f"{cell:<8}" for cell in cells)
        lines.append(row)
    return "\n".join(lines)


def format_summary_table(results: Mapping[str, ErrorSummary], title: str) -> str:
    """Render the Table 5 layout: one quantile row per estimator."""
    lines = [title, "=" * len(title),
             f"{'Estimator':<16}{'Median':>10}{'95th':>10}{'99th':>10}{'Max':>10}"]
    for estimator, summary in results.items():
        lines.append(f"{estimator:<16}"
                     f"{format_error(summary.median):>10}{format_error(summary.p95):>10}"
                     f"{format_error(summary.p99):>10}{format_error(summary.maximum):>10}")
    return "\n".join(lines)


def format_series(rows: Sequence[Mapping[str, object]], columns: Sequence[str],
                  title: str) -> str:
    """Render a list of records as a fixed-width series table (figures)."""
    lines = [title, "=" * len(title),
             "".join(f"{column:>18}" for column in columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_latency_table(latencies: Mapping[str, Mapping[float, float]],
                         title: str) -> str:
    """Render per-estimator latency quantiles in milliseconds (Figure 6)."""
    quantiles = sorted(next(iter(latencies.values())).keys()) if latencies else []
    header = f"{'Estimator':<16}" + "".join(f"{f'p{int(q * 100)} (ms)':>14}" for q in quantiles)
    lines = [title, "=" * len(title), header]
    for estimator, values in latencies.items():
        lines.append(f"{estimator:<16}"
                     + "".join(f"{values[q]:>14.2f}" for q in quantiles))
    return "\n".join(lines)
