"""Registry mapping experiment identifiers to their reproduction functions."""

from __future__ import annotations

from typing import Callable

from . import experiments

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

#: Experiment id → (description, callable).
EXPERIMENTS: dict[str, tuple[str, Callable[..., dict]]] = {
    "figure4": ("Query selectivity distribution",
                experiments.figure4_selectivity_distribution),
    "table3": ("Accuracy on DMV, all estimator families",
               experiments.table3_dmv_accuracy),
    "table4": ("Accuracy on Conviva-A",
               experiments.table4_conviva_accuracy),
    "table5": ("Robustness to out-of-distribution queries",
               experiments.table5_ood_robustness),
    "figure5": ("Training time vs model quality",
                experiments.figure5_training_quality),
    "figure6": ("Estimation latency",
                experiments.figure6_estimation_latency),
    "table6": ("Query-region size vs enumeration latency",
               experiments.table6_query_region),
    "table7": ("Model size vs entropy gap",
               experiments.table7_model_size),
    "figure7": ("Accuracy vs artificial entropy gap (oracle)",
                experiments.figure7_entropy_gap),
    "figure8": ("Accuracy vs column count (oracle)",
                experiments.figure8_column_scaling),
    "table8": ("Robustness to data shifts",
               experiments.table8_data_shift),
    "serve": ("Serving throughput: batched engine vs sequential sampling",
              experiments.serve_throughput),
    "serve_multi": ("Multi-model fleet throughput: routed registry vs "
                    "N sequential engines",
                    experiments.serve_multi),
    "serve_replicated": ("Replicated hot-relation serving with admission "
                         "control and a fleet result cache",
                         experiments.serve_replicated),
    "serve_stream": ("Async streaming submission and SLO-aware adaptive "
                     "batching under bursty arrivals",
                     experiments.serve_stream),
    "serve_procfleet": ("Cross-process sharded fleet: N OS worker processes "
                        "vs the single-process router",
                        experiments.serve_procfleet),
    "serve_refresh": ("Live refresh under partitioned ingest: stale-model "
                      "q-error degrades, one fine-tune recovers it, zero "
                      "invalid cache hits",
                      experiments.serve_refresh),
    "serve_loadgen": ("Open-loop load generation: latency-vs-offered-load "
                      "curve, SLO knee, and chaos drills asserted "
                      "degraded-not-collapsed",
                      experiments.serve_loadgen),
    "serve_ensemble": ("Per-query estimator ensemble: DNF/LIKE workload "
                       "routed across Naru primaries and sampling fallbacks "
                       "by capability",
                       experiments.serve_ensemble),
}


def list_experiments() -> list[tuple[str, str]]:
    """Return ``(identifier, description)`` pairs of all known experiments."""
    return [(name, description) for name, (description, _) in EXPERIMENTS.items()]


def run_experiment(name: str, **kwargs) -> dict:
    """Run one experiment by id and return its structured result."""
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}")
    _, function = EXPERIMENTS[name]
    return function(**kwargs)
