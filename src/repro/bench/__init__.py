"""Experiment harness reproducing every table and figure of the paper."""

from .experiments import (
    NaruSampleVariant,
    figure4_selectivity_distribution,
    figure5_training_quality,
    figure6_estimation_latency,
    figure7_entropy_gap,
    figure8_column_scaling,
    serve_multi,
    serve_replicated,
    serve_stream,
    serve_throughput,
    table3_dmv_accuracy,
    table4_conviva_accuracy,
    table5_ood_robustness,
    table6_query_region,
    table7_model_size,
    table8_data_shift,
)
from .harness import EstimatorRun, accuracy_by_bucket, compare_estimators, run_estimator
from .registry import EXPERIMENTS, list_experiments, run_experiment
from .reports import (
    format_accuracy_table,
    format_latency_table,
    format_series,
    format_summary_table,
)
from .scales import PAPER, SMOKE, ExperimentScale, active_scale

__all__ = [
    "EstimatorRun",
    "run_estimator",
    "compare_estimators",
    "accuracy_by_bucket",
    "NaruSampleVariant",
    "figure4_selectivity_distribution",
    "table3_dmv_accuracy",
    "table4_conviva_accuracy",
    "table5_ood_robustness",
    "figure5_training_quality",
    "figure6_estimation_latency",
    "table6_query_region",
    "table7_model_size",
    "figure7_entropy_gap",
    "figure8_column_scaling",
    "table8_data_shift",
    "serve_throughput",
    "serve_multi",
    "serve_replicated",
    "serve_stream",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
    "ExperimentScale",
    "SMOKE",
    "PAPER",
    "active_scale",
    "format_accuracy_table",
    "format_summary_table",
    "format_series",
    "format_latency_table",
]
