"""Command line for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench run table3
    REPRO_SCALE=paper python -m repro.bench run all
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import EXPERIMENTS, list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description="Reproduce the paper's tables and figures")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. table3, figure7, all")
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        for name, description in list_experiments():
            print(f"{name:<10} {description}")
        return 0

    targets = list(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for target in targets:
        start = time.perf_counter()
        result = run_experiment(target)
        elapsed = time.perf_counter() - start
        print(result["text"])
        print(f"[{target} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
