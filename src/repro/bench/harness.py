"""Benchmark harness: run estimators over labelled workloads and collect metrics.

The harness is deliberately estimator-agnostic: anything implementing
:class:`repro.estimators.base.CardinalityEstimator` can be measured.  For every
query it records the q-error, the true selectivity (for bucketing as in the
paper's tables) and the wall-clock estimation latency (for Figure 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..estimators.base import CardinalityEstimator
from ..query.generator import LabeledQuery
from ..query.metrics import ErrorSummary, bucketize, q_error, summarize_errors

__all__ = ["EstimatorRun", "run_estimator", "compare_estimators", "accuracy_by_bucket"]


@dataclass
class EstimatorRun:
    """Per-query results of one estimator over one workload."""

    name: str
    errors: list[float] = field(default_factory=list)
    selectivities: list[float] = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)
    size_bytes: int = 0

    # ------------------------------------------------------------------ #
    def overall_summary(self) -> ErrorSummary:
        """Quantile summary of q-errors over the full workload."""
        return summarize_errors(self.errors)

    def bucket_summaries(self) -> Mapping[str, ErrorSummary]:
        """Quantile summaries grouped by true-selectivity bucket."""
        return bucketize(self.errors, self.selectivities)

    def latency_quantiles(self, quantiles=(0.5, 0.95, 0.99)) -> dict[float, float]:
        """Latency quantiles in milliseconds."""
        values = np.asarray(self.latencies_ms)
        return {q: float(np.quantile(values, q)) for q in quantiles}

    def max_error(self) -> float:
        """Worst-case q-error (the paper's headline robustness number)."""
        return float(max(self.errors)) if self.errors else float("nan")


def run_estimator(estimator: CardinalityEstimator,
                  workload: Sequence[LabeledQuery]) -> EstimatorRun:
    """Evaluate one estimator on a labelled workload.

    Every query is timed individually; the q-error is computed against the
    exact cardinality carried by the :class:`LabeledQuery`.
    """
    run = EstimatorRun(name=estimator.name, size_bytes=estimator.size_bytes())
    for item in workload:
        start = time.perf_counter()
        estimate = estimator.estimate_cardinality(item.query)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        run.errors.append(q_error(estimate, item.cardinality))
        run.selectivities.append(item.selectivity)
        run.latencies_ms.append(elapsed_ms)
    return run


def compare_estimators(estimators: Sequence[CardinalityEstimator],
                       workload: Sequence[LabeledQuery]) -> dict[str, EstimatorRun]:
    """Run several estimators over the same workload."""
    return {estimator.name: run_estimator(estimator, workload)
            for estimator in estimators}


def accuracy_by_bucket(runs: Mapping[str, EstimatorRun]
                       ) -> dict[str, Mapping[str, ErrorSummary]]:
    """Bucketised accuracy of several runs (the layout of Tables 3 and 4)."""
    return {name: run.bucket_summaries() for name, run in runs.items()}
