"""CSV import/export for :class:`repro.data.table.Table`.

The estimator is dataset-agnostic: any CSV with a header row can be loaded
into a :class:`Table` and used to build a Naru model (this is how a user would
point the library at the real DMV export, for example).
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

import numpy as np

from .table import Column, Table

__all__ = ["read_csv", "write_csv"]


def _coerce_numeric(values: list[str]) -> np.ndarray:
    """Convert a string column to int/float when every value parses cleanly."""
    try:
        as_int = np.array([int(v) for v in values], dtype=np.int64)
        return as_int
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in values], dtype=np.float64)
    except ValueError:
        return np.array(values, dtype=object)


def read_csv(path: str | os.PathLike, columns: Sequence[str] | None = None,
             name: str | None = None, max_rows: int | None = None) -> Table:
    """Load a CSV file (with header) into a :class:`Table`.

    Parameters
    ----------
    path:
        CSV file path.
    columns:
        Optional subset of columns to keep, in the given order.
    name:
        Table name; defaults to the file stem.
    max_rows:
        Optional row limit (useful for snapshot-style training, §4.1).
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = []
        for index, row in enumerate(reader):
            if max_rows is not None and index >= max_rows:
                break
            rows.append(row)
    if not rows:
        raise ValueError(f"CSV file {path} contains no data rows")

    wanted = list(columns) if columns is not None else header
    missing = [col for col in wanted if col not in header]
    if missing:
        raise KeyError(f"columns not present in CSV header: {missing}")

    table_columns = []
    for col in wanted:
        position = header.index(col)
        raw = [row[position] for row in rows]
        table_columns.append(Column(col, _coerce_numeric(raw)))
    table_name = name or os.path.splitext(os.path.basename(str(path)))[0]
    return Table(table_columns, name=table_name)


def write_csv(table: Table, path: str | os.PathLike) -> None:
    """Write a :class:`Table` to a CSV file with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        raw_columns = [column.values for column in table.columns]
        for row_index in range(table.num_rows):
            writer.writerow([column[row_index] for column in raw_columns])
