"""Join support: materialised equi-joins and on-the-fly join tuple sampling.

The paper (§4.1, "Joins") treats a joined relation exactly like a base table:
the estimator only needs access to tuples of the join result.  Two routes are
provided, matching the two options the paper describes:

* :func:`hash_join` materialises the full join result as a new :class:`Table`
  (practical for the scaled-down tables used in this reproduction), and
* :class:`JoinSampler` yields random batches of joined tuples without
  materialising the result, emulating the sampler-based route for big joins.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .table import Column, Table

__all__ = ["hash_join", "JoinSampler", "JoinSpec"]


def _build_hash_index(table: Table, key: str) -> dict:
    """Map each key value to the list of row indices holding it."""
    index: dict = defaultdict(list)
    for row, value in enumerate(table.column(key).values):
        index[value].append(row)
    return index


def hash_join(left: Table, right: Table, left_key: str, right_key: str,
              name: str | None = None,
              suffixes: tuple[str, str] = ("_l", "_r")) -> Table:
    """Materialise the inner equi-join of two tables.

    Column names that collide between the inputs are disambiguated with
    ``suffixes``; the join key is kept once (from the left table).
    """
    right_index = _build_hash_index(right, right_key)
    left_rows: list[int] = []
    right_rows: list[int] = []
    for row, value in enumerate(left.column(left_key).values):
        for match in right_index.get(value, ()):
            left_rows.append(row)
            right_rows.append(match)
    if not left_rows:
        raise ValueError("join result is empty; the estimator needs at least one tuple")

    left_idx = np.asarray(left_rows)
    right_idx = np.asarray(right_rows)

    columns: list[Column] = []
    used_names: set[str] = set()
    for column in left.columns:
        columns.append(Column(column.name, column.values[left_idx]))
        used_names.add(column.name)
    for column in right.columns:
        if column.name == right_key:
            continue
        out_name = column.name
        if out_name in used_names:
            out_name = f"{column.name}{suffixes[1]}"
        columns.append(Column(out_name, column.values[right_idx]))
        used_names.add(out_name)

    return Table(columns, name=name or f"{left.name}_join_{right.name}")


class JoinSampler:
    """Sample random tuples from an equi-join without materialising it.

    The sampler draws a left row uniformly, then a uniformly random matching
    right row; rows without a match are rejected.  This produces tuples from
    the join result with probability proportional to the left row's fan-out
    normalised away, which is sufficient for the estimator-training use case
    (the paper cites join samplers [5, 29] for the same purpose).
    """

    def __init__(self, left: Table, right: Table, left_key: str, right_key: str,
                 seed: int = 0) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self._rng = np.random.default_rng(seed)
        self._right_index = _build_hash_index(right, right_key)
        left_values = left.column(left_key).values
        self._joinable_left_rows = np.array(
            [row for row, value in enumerate(left_values) if value in self._right_index])
        if self._joinable_left_rows.size == 0:
            raise ValueError("no joinable rows between the two tables")
        self._schema = self._joined_schema()

    def _joined_schema(self) -> list[str]:
        names = list(self.left.column_names)
        for column in self.right.columns:
            if column.name == self.right_key:
                continue
            names.append(column.name if column.name not in names else f"{column.name}_r")
        return names

    @property
    def column_names(self) -> list[str]:
        """Schema of the sampled joined tuples."""
        return list(self._schema)

    def sample(self, count: int) -> list[tuple]:
        """Return ``count`` raw joined tuples."""
        rows = self._rng.choice(self._joinable_left_rows, size=count)
        key_values = self.left.column(self.left_key).values
        output = []
        for left_row in rows:
            matches = self._right_index[key_values[left_row]]
            right_row = matches[self._rng.integers(0, len(matches))]
            tuple_values = [column.values[left_row] for column in self.left.columns]
            for column in self.right.columns:
                if column.name == self.right_key:
                    continue
                tuple_values.append(column.values[right_row])
            output.append(tuple(tuple_values))
        return output

    def sample_table(self, count: int, name: str = "join_sample") -> Table:
        """Return ``count`` sampled joined tuples as a :class:`Table`."""
        return Table.from_records(self.sample(count), self.column_names, name=name)


@dataclass(frozen=True)
class JoinSpec:
    """Declarative description of a join relation between two named tables.

    This is the schema-level counterpart of :func:`hash_join` /
    :class:`JoinSampler`: it names the inputs instead of holding them, so a
    join can be configured (on a command line, in a registry, in a config
    file) before the tables exist and :meth:`build` turns it into a concrete
    :class:`Table` once they do.  The serving registry
    (:class:`repro.serve.ModelRegistry`) registers the result as a first-class
    named relation next to the base tables.

    Parameters
    ----------
    left, right:
        Names of the input relations (resolved against a mapping at build
        time).
    left_key, right_key:
        Equi-join key column of each input.
    name:
        Name of the resulting relation; defaults to ``"<left>_join_<right>"``.
    how:
        ``"materialise"`` builds the full join result with :func:`hash_join`;
        ``"sample"`` draws ``sample_rows`` tuples through a
        :class:`JoinSampler` instead (the paper's big-join route, where the
        estimator trains on sampled join tuples).
    sample_rows:
        Number of tuples drawn when ``how="sample"``.
    seed:
        Seed of the join sampler (ignored when materialising).
    """

    left: str
    right: str
    left_key: str
    right_key: str
    name: str | None = None
    how: str = "materialise"
    sample_rows: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if self.how not in ("materialise", "sample"):
            raise ValueError(f"unknown join method {self.how!r}; "
                             "use 'materialise' or 'sample'")
        if self.sample_rows < 1:
            raise ValueError("sample_rows must be positive")

    @property
    def relation_name(self) -> str:
        """Name under which the join result is registered."""
        return self.name or f"{self.left}_join_{self.right}"

    def build(self, tables: Mapping[str, Table]) -> Table:
        """Resolve the inputs and produce the join relation as a table."""
        try:
            left, right = tables[self.left], tables[self.right]
        except KeyError as error:
            known = ", ".join(sorted(tables)) or "none"
            raise KeyError(f"join input {error.args[0]!r} is not registered; "
                           f"known relations: {known}") from None
        if self.how == "materialise":
            return hash_join(left, right, self.left_key, self.right_key,
                             name=self.relation_name)
        sampler = JoinSampler(left, right, self.left_key, self.right_key,
                              seed=self.seed)
        return sampler.sample_table(self.sample_rows, name=self.relation_name)
