"""In-memory relational substrate: columns, tables and dictionary encoding.

Naru models a relation as a high-dimensional *discrete* distribution.  The
first step (§4.2 of the paper) is to dictionary-encode every column into
integer ids ``[0, |A_i|)``, with the dictionary sorted so that the integer
order is consistent with the natural column order (this is what makes range
predicates meaningful on the encoded representation).  This module implements
that substrate: :class:`Column` holds one attribute with its domain and codes,
:class:`Table` is an ordered collection of columns with helpers for sampling,
projection and size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Column", "Table"]


def _is_numeric(values: np.ndarray) -> bool:
    return np.issubdtype(values.dtype, np.number)


@dataclass
class Column:
    """A single attribute: raw values, sorted domain and integer codes.

    Parameters
    ----------
    name:
        Attribute name.
    values:
        Raw per-row values (numeric or object/string).
    """

    name: str
    values: np.ndarray
    domain: np.ndarray = field(init=False)
    codes: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        if values.ndim != 1:
            raise ValueError(f"column {self.name!r} must be one-dimensional")
        if values.size == 0:
            raise ValueError(f"column {self.name!r} is empty")
        self.values = values
        # ``np.unique`` returns the sorted distinct values and, with
        # ``return_inverse``, the dictionary codes in one pass.
        domain, codes = np.unique(values, return_inverse=True)
        self.domain = domain
        self.codes = codes.astype(np.int64)

    # ------------------------------------------------------------------ #
    @property
    def domain_size(self) -> int:
        """Number of distinct values ``|A_i|``."""
        return int(self.domain.size)

    @property
    def num_rows(self) -> int:
        return int(self.values.size)

    @property
    def is_numeric(self) -> bool:
        """Whether the raw values are numeric (ordered semantics)."""
        return _is_numeric(self.domain)

    def value_to_code(self, value) -> int:
        """Map a raw value to its dictionary code.

        Raises
        ------
        KeyError
            If the value does not appear in the column's domain.
        """
        index = int(np.searchsorted(self.domain, value))
        if index >= self.domain_size or self.domain[index] != value:
            raise KeyError(f"value {value!r} not in domain of column {self.name!r}")
        return index

    def code_to_value(self, code: int):
        """Map a dictionary code back to the raw value."""
        return self.domain[int(code)]

    def codes_leq(self, value) -> int:
        """Return the exclusive upper code bound for ``column <= value``.

        The result ``k`` means codes ``[0, k)`` satisfy the predicate even if
        ``value`` itself is not present in the domain.
        """
        return int(np.searchsorted(self.domain, value, side="right"))

    def codes_lt(self, value) -> int:
        """Return the exclusive upper code bound for ``column < value``."""
        return int(np.searchsorted(self.domain, value, side="left"))

    def value_counts(self) -> np.ndarray:
        """Histogram of codes over the domain (length ``|A_i|``)."""
        return np.bincount(self.codes, minlength=self.domain_size).astype(np.int64)

    def marginal(self) -> np.ndarray:
        """Empirical marginal distribution ``P(A_i)`` over the domain."""
        counts = self.value_counts()
        return counts / counts.sum()

    def in_memory_bytes(self) -> int:
        """Approximate footprint of the raw column (for storage budgets)."""
        if self.is_numeric:
            return int(self.values.size * 8)
        # Strings: count characters, assume 1 byte per character.
        return int(sum(len(str(v)) for v in self.domain)
                   + self.values.size * 8)

    def __repr__(self) -> str:
        return (f"Column(name={self.name!r}, rows={self.num_rows}, "
                f"domain={self.domain_size})")


class Table:
    """An ordered collection of :class:`Column` objects over the same rows."""

    def __init__(self, columns: Sequence[Column], name: str = "table") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        num_rows = columns[0].num_rows
        for column in columns:
            if column.num_rows != num_rows:
                raise ValueError(
                    f"column {column.name!r} has {column.num_rows} rows, "
                    f"expected {num_rows}")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        self.name = name
        self.columns = list(columns)
        self._by_name = {column.name: column for column in columns}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable], name: str = "table") -> "Table":
        """Build a table from a ``{column name: values}`` mapping."""
        columns = [Column(col_name, np.asarray(list(values) if not isinstance(values, np.ndarray) else values))
                   for col_name, values in data.items()]
        return cls(columns, name=name)

    @classmethod
    def from_records(cls, records: Sequence[Sequence], column_names: Sequence[str],
                     name: str = "table") -> "Table":
        """Build a table from row-major records."""
        arrays = list(zip(*records))
        if len(arrays) != len(column_names):
            raise ValueError("record width does not match number of column names")
        data = {col: np.asarray(values) for col, values in zip(column_names, arrays)}
        return cls.from_dict(data, name=name)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return self.columns[0].num_rows

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def domain_sizes(self) -> list[int]:
        """Per-column domain sizes ``[|A_1|, …, |A_n|]``."""
        return [column.domain_size for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no column named {name!r} in table {self.name!r}") from None

    def column_index(self, name: str) -> int:
        """Positional index of a column."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise KeyError(f"no column named {name!r} in table {self.name!r}")

    def log_joint_size(self) -> float:
        """``log10`` of the exact joint-distribution size (product of domains)."""
        return float(np.sum(np.log10(np.asarray(self.domain_sizes, dtype=np.float64))))

    def in_memory_bytes(self) -> int:
        """Approximate in-memory size of the raw table (for storage budgets)."""
        return int(sum(column.in_memory_bytes() for column in self.columns))

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #
    def encoded(self) -> np.ndarray:
        """Dictionary-encoded matrix of shape ``(num_rows, num_columns)``."""
        return np.stack([column.codes for column in self.columns], axis=1)

    def raw_row(self, index: int) -> tuple:
        """Return one row of raw (decoded) values."""
        return tuple(column.values[index] for column in self.columns)

    def sample_rows(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniformly sample ``count`` encoded rows (with replacement)."""
        indices = rng.integers(0, self.num_rows, size=count)
        return self.encoded()[indices]

    def project(self, column_names: Sequence[str], name: str | None = None) -> "Table":
        """Return a new table with only the named columns (same rows)."""
        columns = [self.column(col) for col in column_names]
        projected = [Column(col.name, col.values) for col in columns]
        return Table(projected, name=name or f"{self.name}_proj")

    def take_rows(self, row_indices: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table consisting of the selected rows."""
        row_indices = np.asarray(row_indices)
        columns = [Column(col.name, col.values[row_indices]) for col in self.columns]
        return Table(columns, name=name or self.name)

    def concat(self, other: "Table", name: str | None = None) -> "Table":
        """Append the rows of ``other`` (same schema) to this table."""
        if self.column_names != other.column_names:
            raise ValueError("cannot concatenate tables with different schemas")
        columns = [
            Column(mine.name, np.concatenate([mine.values, theirs.values]))
            for mine, theirs in zip(self.columns, other.columns)
        ]
        return Table(columns, name=name or self.name)

    def __repr__(self) -> str:
        return (f"Table(name={self.name!r}, rows={self.num_rows}, "
                f"columns={self.num_columns})")
