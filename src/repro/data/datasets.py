"""Synthetic dataset generators standing in for the paper's evaluation data.

The paper evaluates on three proprietary or bulky real-world tables:

* **DMV** — 11.5M rows × 11 columns of New York vehicle registrations,
* **Conviva-A** — 4.1M rows × 15 columns of video-session logs,
* **Conviva-B** — 10K rows × 100 columns used only for oracle micro-benchmarks.

None of those can be shipped or downloaded in this environment, so this module
generates synthetic tables that preserve the characteristics the results
depend on: the same column names and per-column domain sizes, heavy skew
(Zipf-like marginals), and strong cross-column correlation induced through a
latent-class mixture.  Absolute row counts are scaled down so CPU training
remains fast; they are configurable for larger runs.

The correlation mechanism: every row draws a latent class ``z`` from a skewed
distribution, and every column value is a deterministic function of ``z``
perturbed by a small amount of column-specific noise.  Columns therefore share
most of their information through ``z`` — exactly the regime where the
attribute-value-independence assumption used by classical estimators breaks
down, which is the phenomenon the paper's accuracy results hinge on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from .table import Column, Table

__all__ = [
    "ColumnSpec",
    "make_correlated_table",
    "make_dmv",
    "make_conviva_a",
    "make_conviva_b",
    "make_census",
    "make_independent_table",
    "make_users",
    "make_sessions",
]


@dataclass(frozen=True)
class ColumnSpec:
    """Specification of one synthetic column.

    Parameters
    ----------
    name:
        Column name.
    domain_size:
        Target number of distinct values.
    kind:
        ``"categorical"`` produces string labels, ``"ordinal"`` produces
        integers whose order is meaningful (these receive range predicates in
        the workload generator).
    skew:
        Zipf-like skew of the value distribution within the column; higher
        means more mass concentrated on few values.
    correlation:
        In ``[0, 1]``; the probability that a row's value is driven by the
        latent class rather than by independent noise.
    """

    name: str
    domain_size: int
    kind: str = "categorical"
    skew: float = 1.1
    correlation: float = 0.85

    def __post_init__(self) -> None:
        if self.domain_size < 2:
            raise ValueError("domain_size must be at least 2")
        if self.kind not in ("categorical", "ordinal"):
            raise ValueError(f"unknown column kind {self.kind!r}")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")


def _zipf_weights(size: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def _column_values(spec: ColumnSpec, latent: np.ndarray, num_classes: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Generate raw values for one column given per-row latent classes."""
    size = spec.domain_size
    weights = _zipf_weights(size, spec.skew)

    # Value driven by the latent class: a fixed pseudo-random permutation maps
    # each latent class to a *popular* value of this column, so different
    # columns agree through z (correlation) while keeping skewed marginals.
    # The column name is folded in through a *stable* hash: ``hash()`` is
    # randomised per process and would make every run generate a different
    # relation.
    class_rng = np.random.default_rng(zlib.crc32(("naru" + spec.name).encode("utf-8")))
    class_to_code = class_rng.choice(size, size=num_classes, p=weights)

    driven = class_to_code[latent]
    independent = rng.choice(size, size=latent.size, p=weights)
    use_latent = rng.random(latent.size) < spec.correlation
    codes = np.where(use_latent, driven, independent)

    if spec.kind == "ordinal":
        # Spread codes over a numeric range with non-uniform gaps so that the
        # raw values look like real measurements (e.g. bandwidth in kbps).
        gaps = np.maximum(1, class_rng.geometric(0.3, size=size))
        levels = np.cumsum(gaps)
        return levels[codes].astype(np.int64)
    labels = np.array([f"{spec.name}_{index}" for index in range(size)])
    return labels[codes]


def make_correlated_table(specs: list[ColumnSpec], num_rows: int,
                          seed: int = 0, num_classes: int | None = None,
                          name: str = "synthetic") -> Table:
    """Generate a table whose columns are correlated through a latent class.

    Parameters
    ----------
    specs:
        One :class:`ColumnSpec` per column.
    num_rows:
        Number of rows to generate.
    seed:
        Seed of the pseudo-random generator (the output is deterministic).
    num_classes:
        Number of latent classes; defaults to twice the largest domain.
    name:
        Table name.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = np.random.default_rng(seed)
    if num_classes is None:
        num_classes = 2 * max(spec.domain_size for spec in specs)
    latent_weights = _zipf_weights(num_classes, skew=1.3)
    latent = rng.choice(num_classes, size=num_rows, p=latent_weights)

    columns = [Column(spec.name, _column_values(spec, latent, num_classes, rng))
               for spec in specs]
    return Table(columns, name=name)


def make_independent_table(specs: list[ColumnSpec], num_rows: int, seed: int = 0,
                           name: str = "independent") -> Table:
    """Generate a table whose columns are mutually independent.

    Used by tests and ablations as the control case where the independence
    assumption of classical estimators is actually correct.
    """
    independent_specs = [
        ColumnSpec(spec.name, spec.domain_size, spec.kind, spec.skew, correlation=0.0)
        for spec in specs
    ]
    return make_correlated_table(independent_specs, num_rows, seed=seed, name=name)


# --------------------------------------------------------------------------- #
# Paper datasets (synthetic stand-ins)
# --------------------------------------------------------------------------- #
_DMV_SPECS = [
    ColumnSpec("record_type", 4, "categorical", skew=1.0),
    ColumnSpec("reg_class", 75, "categorical", skew=1.3),
    ColumnSpec("state", 89, "categorical", skew=1.6),
    ColumnSpec("county", 63, "categorical", skew=1.2),
    ColumnSpec("body_type", 59, "categorical", skew=1.4),
    ColumnSpec("fuel_type", 9, "categorical", skew=1.8),
    ColumnSpec("valid_date", 1024, "ordinal", skew=1.05),
    ColumnSpec("color", 225, "categorical", skew=1.3),
    ColumnSpec("scofflaw_indicator", 2, "categorical", skew=2.0),
    ColumnSpec("suspension_indicator", 2, "categorical", skew=2.0),
    ColumnSpec("revocation_indicator", 2, "categorical", skew=2.0),
]

_CONVIVA_A_SPECS = [
    ColumnSpec("error_flag", 2, "categorical", skew=2.0),
    ColumnSpec("connection_type", 7, "categorical", skew=1.5),
    ColumnSpec("device_type", 24, "categorical", skew=1.4),
    ColumnSpec("cdn", 12, "categorical", skew=1.3),
    ColumnSpec("isp", 180, "categorical", skew=1.5),
    ColumnSpec("city", 420, "categorical", skew=1.5),
    ColumnSpec("content_type", 5, "categorical", skew=1.2),
    ColumnSpec("player_version", 40, "categorical", skew=1.3),
    ColumnSpec("join_time_ms", 900, "ordinal", skew=1.1),
    ColumnSpec("buffering_ratio", 600, "ordinal", skew=1.1),
    ColumnSpec("average_bitrate_kbps", 1500, "ordinal", skew=1.05),
    ColumnSpec("peak_bitrate_kbps", 1900, "ordinal", skew=1.05),
    ColumnSpec("bytes_sent", 1200, "ordinal", skew=1.05),
    ColumnSpec("session_duration_s", 1000, "ordinal", skew=1.1),
    ColumnSpec("rebuffer_count", 60, "ordinal", skew=1.6),
]


def make_dmv(num_rows: int = 60_000, seed: int = 0) -> Table:
    """Synthetic stand-in for the paper's DMV table (11 columns).

    Column names and domain sizes follow Table 1 / §6.1.1 of the paper; the
    ``valid_date`` domain is scaled from 2101 to 1024 distinct values to keep
    the output layer small enough for fast CPU training (the scaling factor is
    uniform and does not change the estimation problem structurally).
    """
    return make_correlated_table(_DMV_SPECS, num_rows, seed=seed, name="dmv")


def make_conviva_a(num_rows: int = 40_000, seed: int = 1) -> Table:
    """Synthetic stand-in for Conviva-A (15 columns, large-domain numerics)."""
    return make_correlated_table(_CONVIVA_A_SPECS, num_rows, seed=seed,
                                 name="conviva_a")


def make_conviva_b(num_rows: int = 2_000, num_columns: int = 100,
                   seed: int = 2) -> Table:
    """Synthetic stand-in for Conviva-B (default 100 columns, small rows).

    This table exists purely for the oracle-model micro-benchmarks
    (Figures 7 and 8); only its shape (many columns, tiny row count) matters.
    """
    rng = np.random.default_rng(seed)
    specs = []
    for index in range(num_columns):
        domain = int(rng.integers(2, 40)) if index % 3 else int(rng.integers(40, 200))
        kind = "ordinal" if index % 2 else "categorical"
        specs.append(ColumnSpec(f"col_{index:03d}", domain, kind,
                                skew=float(rng.uniform(1.0, 1.8))))
    return make_correlated_table(specs, num_rows, seed=seed, name="conviva_b")


def make_users(num_users: int = 500, seed: int = 4) -> Table:
    """A users dimension table keyed by ``user_id`` (one row per user).

    Together with :func:`make_sessions` this forms the package's keyed
    star-schema pair: ``sessions.user_id`` references ``users.user_id``, so
    the two tables can be equi-joined (:func:`repro.data.hash_join`,
    :class:`repro.data.JoinSampler`) and the join served as a first-class
    relation next to the base tables.
    """
    if num_users < 2:
        raise ValueError("num_users must be at least 2")
    rng = np.random.default_rng(seed)
    plans = np.array(["free", "basic", "pro", "enterprise"])
    countries = np.array([f"country_{index}" for index in range(14)])
    age_groups = np.array(["18-24", "25-34", "35-44", "45-54", "55+"])
    return Table.from_dict({
        "user_id": np.arange(num_users, dtype=np.int64),
        "plan": rng.choice(plans, size=num_users, p=[0.55, 0.25, 0.15, 0.05]),
        "country": rng.choice(countries, size=num_users,
                              p=_zipf_weights(countries.size, 1.4)),
        "age_group": rng.choice(age_groups, size=num_users,
                                p=[0.2, 0.3, 0.25, 0.15, 0.1]),
    }, name="users")


def make_sessions(num_rows: int = 8_000, num_users: int = 500,
                  seed: int = 5) -> Table:
    """A sessions fact table referencing :func:`make_users` by ``user_id``.

    ``user_id`` follows a Zipf-like distribution over the user population, so
    the equi-join with the users table has realistic skewed fan-out; the
    measure columns are correlated through a latent class like every other
    synthetic table in this module.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    if num_users < 2:
        raise ValueError("num_users must be at least 2")
    rng = np.random.default_rng(seed)
    measures = make_correlated_table([
        ColumnSpec("device", 8, "categorical", skew=1.4),
        ColumnSpec("duration_s", 240, "ordinal", skew=1.1),
        ColumnSpec("pages_viewed", 40, "ordinal", skew=1.3),
        ColumnSpec("errors", 5, "categorical", skew=1.8),
    ], num_rows, seed=seed, name="session_measures")
    user_ids = rng.choice(num_users, size=num_rows,
                          p=_zipf_weights(num_users, 1.2)).astype(np.int64)
    return Table.from_dict({
        "user_id": user_ids,
        "device": measures.column("device").values,
        "duration_s": measures.column("duration_s").values,
        "pages_viewed": measures.column("pages_viewed").values,
        "errors": measures.column("errors").values,
    }, name="sessions")


def make_census(num_rows: int = 20_000, seed: int = 3) -> Table:
    """A small census-like table (extra dataset used by examples and tests)."""
    specs = [
        ColumnSpec("age", 75, "ordinal", skew=1.05),
        ColumnSpec("workclass", 9, "categorical", skew=1.4),
        ColumnSpec("education", 16, "categorical", skew=1.2),
        ColumnSpec("marital_status", 7, "categorical", skew=1.3),
        ColumnSpec("occupation", 15, "categorical", skew=1.2),
        ColumnSpec("relationship", 6, "categorical", skew=1.3),
        ColumnSpec("race", 5, "categorical", skew=1.8),
        ColumnSpec("sex", 2, "categorical", skew=1.2),
        ColumnSpec("hours_per_week", 95, "ordinal", skew=1.1),
        ColumnSpec("native_country", 42, "categorical", skew=2.0),
        ColumnSpec("income_bracket", 2, "categorical", skew=1.5),
    ]
    return make_correlated_table(specs, num_rows, seed=seed, name="census")
