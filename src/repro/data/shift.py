"""Partitioned ingest used by the data-shift robustness study (Table 8).

The paper partitions DMV by a date column into five parts, ingests them one by
one ("one new partition per day") and measures how a stale estimator degrades
versus one that is fine-tuned after every ingest.  :class:`PartitionedIngest`
reproduces that protocol for any table and partitioning column.
"""

from __future__ import annotations

import numpy as np

from .table import Table

__all__ = ["partition_by_column", "encode_with_dictionaries", "PartitionedIngest"]


def encode_with_dictionaries(base: Table, rows: Table) -> np.ndarray | None:
    """Encode ``rows`` with ``base``'s per-column dictionaries.

    The ingest/refresh path needs newly arrived tuples expressed in the code
    space of the *already trained* model — ``rows.encoded()`` would re-derive
    fresh dictionaries and silently renumber every code.  Returns an
    ``(num_rows, num_columns)`` int64 array, or ``None`` when any value is
    outside ``base``'s dictionaries (the caller must then rebuild the model
    from scratch instead of fine-tuning it).
    """
    if base.column_names != rows.column_names:
        raise ValueError("cannot encode rows with a different schema")
    encoded = []
    for name in base.column_names:
        domain = base.column(name).domain
        values = rows.column(name).values
        codes = np.clip(np.searchsorted(domain, values), 0, len(domain) - 1)
        if not np.array_equal(domain[codes], values):
            return None
        encoded.append(codes.astype(np.int64))
    return np.stack(encoded, axis=1)


def partition_by_column(table: Table, column_name: str,
                        num_partitions: int) -> list[Table]:
    """Split ``table`` into ``num_partitions`` ordered by ``column_name``.

    Rows are ordered by the partitioning column's value (ties broken by row
    position) and cut into contiguous, near-equal chunks, emulating date-range
    partitioning.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be at least 1")
    if num_partitions > table.num_rows:
        raise ValueError("more partitions than rows")
    order = np.argsort(table.column(column_name).codes, kind="stable")
    boundaries = np.linspace(0, table.num_rows, num_partitions + 1).astype(int)
    partitions = []
    for part in range(num_partitions):
        rows = order[boundaries[part]:boundaries[part + 1]]
        partitions.append(table.take_rows(rows, name=f"{table.name}_part{part}"))
    return partitions


class PartitionedIngest:
    """Replays a table as a sequence of partition ingests.

    After each :meth:`ingest_next` call, :attr:`visible` is the union of all
    partitions ingested so far — the relation an estimator would see at that
    point in time.
    """

    def __init__(self, table: Table, column_name: str, num_partitions: int) -> None:
        self.partitions = partition_by_column(table, column_name, num_partitions)
        self._ingested = 0
        self._visible: Table | None = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def num_ingested(self) -> int:
        """How many partitions have been ingested so far."""
        return self._ingested

    @property
    def visible(self) -> Table:
        """The union of all ingested partitions."""
        if self._visible is None:
            raise RuntimeError("no partition has been ingested yet")
        return self._visible

    def ingest_next(self) -> Table:
        """Ingest the next partition and return the newly visible table."""
        if self._ingested >= self.num_partitions:
            raise RuntimeError("all partitions have already been ingested")
        part = self.partitions[self._ingested]
        self._visible = part if self._visible is None else self._visible.concat(part)
        self._ingested += 1
        return self._visible

    def remaining(self) -> int:
        """Number of partitions not yet ingested."""
        return self.num_partitions - self._ingested
