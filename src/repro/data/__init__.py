"""Relational data substrate: tables, synthetic datasets, joins, CSV, shifts."""

from .csv_io import read_csv, write_csv
from .datasets import (
    ColumnSpec,
    make_census,
    make_conviva_a,
    make_conviva_b,
    make_correlated_table,
    make_dmv,
    make_independent_table,
    make_sessions,
    make_users,
)
from .joins import JoinSampler, JoinSpec, hash_join
from .shift import PartitionedIngest, encode_with_dictionaries, partition_by_column
from .table import Column, Table

__all__ = [
    "Column",
    "Table",
    "ColumnSpec",
    "make_correlated_table",
    "make_independent_table",
    "make_dmv",
    "make_conviva_a",
    "make_conviva_b",
    "make_census",
    "make_users",
    "make_sessions",
    "read_csv",
    "write_csv",
    "hash_join",
    "JoinSampler",
    "JoinSpec",
    "partition_by_column",
    "encode_with_dictionaries",
    "PartitionedIngest",
]
