"""Relational data substrate: tables, synthetic datasets, joins, CSV, shifts."""

from .csv_io import read_csv, write_csv
from .datasets import (
    ColumnSpec,
    make_census,
    make_conviva_a,
    make_conviva_b,
    make_correlated_table,
    make_dmv,
    make_independent_table,
)
from .joins import JoinSampler, hash_join
from .shift import PartitionedIngest, partition_by_column
from .table import Column, Table

__all__ = [
    "Column",
    "Table",
    "ColumnSpec",
    "make_correlated_table",
    "make_independent_table",
    "make_dmv",
    "make_conviva_a",
    "make_conviva_b",
    "make_census",
    "read_csv",
    "write_csv",
    "hash_join",
    "JoinSampler",
    "partition_by_column",
    "PartitionedIngest",
]
