"""Commercial-DBMS-style estimator ("DBMS-1" in Table 2 of the paper).

The paper describes DBMS-1 as "1D stats plus inter-column unique value
counts".  This emulation keeps the Postgres-style per-column statistics and
adds two correction mechanisms found in commercial optimisers:

* **pairwise distinct-count correction** — for pairs of equality predicates
  the estimator knows the number of distinct value *combinations* of the two
  columns, so it can replace the independence product
  ``1/d_a · 1/d_b`` with ``1/d_ab``, and
* **exponential back-off** — when combining many predicate selectivities it
  dampens all but the most selective ones (``s₁ · s₂^{1/2} · s₃^{1/4} · …``)
  instead of multiplying them all, which is why its tail errors in the paper
  are far below Postgres' even though it still uses 1-D statistics.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..data.table import Table
from ..query.predicates import Operator, Query
from .postgres import PostgresEstimator

__all__ = ["DBMS1Estimator"]


class DBMS1Estimator(PostgresEstimator):
    """Postgres-style 1-D stats + pairwise distinct counts + back-off."""

    name = "DBMS-1"

    def __init__(self, table: Table, num_mcvs: int = 100,
                 num_histogram_bounds: int = 101,
                 max_column_pairs: int = 64) -> None:
        super().__init__(table, num_mcvs=num_mcvs,
                         num_histogram_bounds=num_histogram_bounds)
        self._distinct = {index: column.domain_size
                          for index, column in enumerate(table.columns)}
        self._pair_distinct = self._build_pair_distinct(table, max_column_pairs)

    @staticmethod
    def _build_pair_distinct(table: Table, max_pairs: int) -> dict[tuple[int, int], int]:
        """Distinct-combination counts for (up to) the first ``max_pairs`` pairs."""
        coded = table.encoded()
        pair_distinct: dict[tuple[int, int], int] = {}
        for first, second in combinations(range(table.num_columns), 2):
            if len(pair_distinct) >= max_pairs:
                break
            combined = coded[:, first].astype(np.int64) * (table.domain_sizes[second] + 1) \
                + coded[:, second]
            pair_distinct[(first, second)] = int(np.unique(combined).size)
        return pair_distinct

    # ------------------------------------------------------------------ #
    def estimate_selectivity(self, query: Query) -> float:
        per_predicate = self.predicate_selectivities(query)

        # Pairwise distinct-count correction for equality predicates.
        equality_columns = []
        for predicate in query:
            if predicate.operator is Operator.EQ:
                equality_columns.append(self.table.column_index(predicate.column))
        correction = 1.0
        used: set[int] = set()
        for first, second in combinations(sorted(set(equality_columns)), 2):
            if first in used or second in used:
                continue
            pair_key = (first, second) if (first, second) in self._pair_distinct \
                else (second, first)
            if pair_key not in self._pair_distinct:
                continue
            independent = self._distinct[first] * self._distinct[second]
            actual = self._pair_distinct[pair_key]
            # Independence overcounts combinations by independent/actual.
            correction *= independent / actual
            used.update((first, second))

        # Exponential back-off combination of per-predicate selectivities.
        ordered = sorted(max(s, 1e-12) for s in per_predicate)
        selectivity = 1.0
        for rank, value in enumerate(ordered[:4]):
            selectivity *= value ** (1.0 / (2 ** rank))
        selectivity *= correction
        return float(np.clip(selectivity, 0.0, 1.0))

    def size_bytes(self) -> int:
        return super().size_bytes() + len(self._pair_distinct) * 12
