"""N-dimensional histogram estimator (``Hist`` in Table 2 of the paper).

Every column is partitioned into equi-width buckets over its dictionary-code
space; the joint histogram stores the tuple count of every bucket-combination
cell.  Within a cell, values are assumed uniformly distributed, so a query's
estimate is the multi-linear contraction of the cell counts with the
per-column "fraction of the bucket inside the predicate" weights.

The number of buckets per column is chosen automatically to fit a storage
budget; with an unlimited budget (one bucket per distinct value everywhere)
the histogram is exact.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..query.predicates import Query
from ..query.shapes import QueryShape
from .base import CardinalityEstimator

__all__ = ["MultiDimHistogramEstimator"]


class MultiDimHistogramEstimator(CardinalityEstimator):
    """Dense N-dimensional equi-width histogram."""

    name = "Hist"

    def __init__(self, table: Table, storage_budget_bytes: int | None = None,
                 buckets_per_column: int | None = None) -> None:
        """Build the histogram.

        Parameters
        ----------
        table:
            The relation to summarise.
        storage_budget_bytes:
            If given, the per-column bucket count is the largest uniform value
            whose dense cell array fits in the budget (8 bytes per cell).
        buckets_per_column:
            Explicit bucket count overriding the budget-driven choice.
        """
        super().__init__(table)
        domain_sizes = np.asarray(table.domain_sizes)
        if buckets_per_column is None:
            buckets_per_column = self._pick_buckets(domain_sizes, storage_budget_bytes)
        self.buckets = np.minimum(domain_sizes, buckets_per_column).astype(int)

        # Map every code to its bucket: equi-width over the code space.
        self._bucket_edges = []
        coded = table.encoded()
        bucketed = np.empty_like(coded)
        for index, column in enumerate(table.columns):
            edges = np.linspace(0, column.domain_size, self.buckets[index] + 1)
            self._bucket_edges.append(edges)
            bucketed[:, index] = np.clip(
                np.searchsorted(edges, coded[:, index], side="right") - 1,
                0, self.buckets[index] - 1)

        self._cells = np.zeros(tuple(self.buckets))
        np.add.at(self._cells, tuple(bucketed.T), 1.0)
        self._cells /= table.num_rows

    @staticmethod
    def _pick_buckets(domain_sizes: np.ndarray, budget_bytes: int | None) -> int:
        if budget_bytes is None:
            return 4
        best = 1
        for candidate in range(1, int(domain_sizes.max()) + 1):
            cells = float(np.prod(np.minimum(domain_sizes, candidate), dtype=np.float64))
            if cells * 8 > budget_bytes:
                break
            best = candidate
        return max(best, 1)

    # ------------------------------------------------------------------ #
    def capabilities(self) -> frozenset[QueryShape]:
        """Mask-based: prefixes reduce to valid-code masks like any filter."""
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX})

    # ------------------------------------------------------------------ #
    def _bucket_weights(self, column_index: int, mask: np.ndarray | None) -> np.ndarray:
        """Fraction of each bucket's code range that satisfies the predicate."""
        buckets = self.buckets[column_index]
        if mask is None:
            return np.ones(buckets)
        edges = self._bucket_edges[column_index]
        weights = np.empty(buckets)
        for bucket in range(buckets):
            low = int(np.ceil(edges[bucket]))
            high = int(np.ceil(edges[bucket + 1]))
            width = max(high - low, 1)
            weights[bucket] = mask[low:high].sum() / width
        return weights

    def estimate_selectivity(self, query: Query) -> float:
        masks = query.column_masks(self.table)
        result = self._cells
        # Contract one axis at a time with the per-column weight vectors.
        for column_index in range(self.table.num_columns):
            weights = self._bucket_weights(column_index, masks[column_index])
            result = np.tensordot(result, weights, axes=([0], [0]))
        return float(np.clip(result, 0.0, 1.0))

    def size_bytes(self) -> int:
        return int(self._cells.size * 8)
