"""Kernel-density estimators (``KDE`` and ``KDE-superv`` in Table 2).

Following Heimel et al. [19] and Kiefer et al. [21], the estimator keeps a
uniform sample of tuples and models the data distribution as an average of
product-Gaussian kernels centred on the sampled points, operating in the
dictionary-code space.  The bandwidth is initialised with Scott's rule;
``KDESupervEstimator`` additionally tunes a per-column bandwidth multiplier
using query feedback (the supervised variant the paper compares against).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr

from ..data.table import Table
from ..query.metrics import q_error
from ..query.predicates import Query
from ..query.shapes import QueryShape
from .base import CardinalityEstimator

__all__ = ["KDEEstimator", "KDESupervEstimator"]


def _mask_to_interval(mask: np.ndarray) -> tuple[float, float]:
    """Smallest code interval covering the predicate's valid codes."""
    valid = np.flatnonzero(mask)
    if valid.size == 0:
        return (1.0, 0.0)  # empty interval
    return (float(valid.min()), float(valid.max()))


class KDEEstimator(CardinalityEstimator):
    """Product-Gaussian KDE over a uniform sample in code space."""

    name = "KDE"

    def __init__(self, table: Table, sample_size: int = 1000, seed: int = 0,
                 bandwidth_multipliers: np.ndarray | None = None) -> None:
        super().__init__(table)
        rng = np.random.default_rng(seed)
        sample_size = min(sample_size, table.num_rows)
        rows = rng.choice(table.num_rows, size=sample_size, replace=False)
        self._points = table.encoded()[rows].astype(np.float64)

        # Scott's rule bandwidth per dimension: n^(-1/(d+4)) * sigma.
        dims = table.num_columns
        scott = sample_size ** (-1.0 / (dims + 4))
        stds = self._points.std(axis=0)
        self._base_bandwidth = np.maximum(scott * stds, 0.5)
        self.bandwidth_multipliers = (np.ones(dims) if bandwidth_multipliers is None
                                      else np.asarray(bandwidth_multipliers, dtype=float))

    @property
    def bandwidth(self) -> np.ndarray:
        """Effective per-column bandwidths."""
        return self._base_bandwidth * self.bandwidth_multipliers

    def capabilities(self) -> frozenset[QueryShape]:
        """Mask-based: prefixes reduce to valid-code masks like any filter."""
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX})

    def estimate_selectivity(self, query: Query) -> float:
        masks = query.column_masks(self.table)
        bandwidth = self.bandwidth
        contributions = np.ones(self._points.shape[0])
        for column_index, mask in enumerate(masks):
            if mask is None:
                continue
            low, high = _mask_to_interval(mask)
            if high < low:
                return 0.0
            centers = self._points[:, column_index]
            width = bandwidth[column_index]
            # Integrate the Gaussian kernel over [low - 0.5, high + 0.5] so an
            # equality predicate covers the unit cell of its code.
            upper = ndtr((high + 0.5 - centers) / width)
            lower = ndtr((low - 0.5 - centers) / width)
            contributions *= np.clip(upper - lower, 0.0, 1.0)
        return float(np.clip(contributions.mean(), 0.0, 1.0))

    def size_bytes(self) -> int:
        return int(self._points.size * 4 + self.bandwidth.size * 8)


class KDESupervEstimator(KDEEstimator):
    """KDE whose bandwidth multipliers are tuned with query feedback.

    The tuning procedure is a coordinate search over per-column bandwidth
    multipliers minimising the mean log q-error on a set of training queries
    with known cardinalities — the "bandwidth optimised through query
    feedback" behaviour of the supervised KDE variant.
    """

    name = "KDE-superv"

    def fit_feedback(self, training_queries: list[tuple[Query, float]],
                     candidate_multipliers: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
                     passes: int = 2) -> None:
        """Tune bandwidth multipliers on (query, true cardinality) pairs."""
        if not training_queries:
            raise ValueError("training_queries must not be empty")

        def objective() -> float:
            errors = []
            for query, true_cardinality in training_queries:
                estimate = self.estimate_cardinality(query)
                errors.append(math.log(q_error(estimate, true_cardinality)))
            return float(np.mean(errors))

        for _ in range(passes):
            for column_index in range(self.table.num_columns):
                best_value = self.bandwidth_multipliers[column_index]
                best_score = objective()
                for candidate in candidate_multipliers:
                    self.bandwidth_multipliers[column_index] = candidate
                    score = objective()
                    if score < best_score:
                        best_score, best_value = score, candidate
                self.bandwidth_multipliers[column_index] = best_value
