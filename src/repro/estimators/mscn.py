"""Supervised learned estimator in the style of MSCN (Kipf et al., CIDR'19).

MSCN is the query-driven baseline of the paper: a deep network trained on
(query, true cardinality) pairs.  As in the original, each query is featurised
from its predicates *plus* a bitmap recording which tuples of a small
materialised sample satisfy the query; the network regresses the normalised
log-selectivity.  Three variants from the paper are reproduced by varying the
materialised-sample size:

* ``MSCN-base`` — default sample of 1,000 tuples,
* ``MSCN-0``    — no materialised sample (query features only),
* a larger-sample variant corresponding to ``MSCN-10K``.

Implementation note: the original model applies a shared per-predicate MLP
followed by average pooling ("multi-set convolution").  Because the number of
predicates here is bounded by the column count, this reproduction uses an
equivalent fixed-width featurisation with one block per column; the
qualitative behaviour the paper reports (heavy reliance on the sample bitmap,
sharp degradation on out-of-distribution queries) is preserved.
"""

from __future__ import annotations

import math

import numpy as np

from .. import nn
from ..data.table import Table
from ..query.generator import LabeledQuery
from ..query.predicates import Operator, Query
from .base import CardinalityEstimator

__all__ = ["MSCNEstimator"]

_FEATURES_PER_COLUMN = 5  # has_filter, is_eq, is_le, is_ge, normalised literal


class MSCNEstimator(CardinalityEstimator):
    """Supervised deep regression network over query features + sample bitmap."""

    def __init__(self, table: Table, sample_size: int = 1000,
                 hidden_sizes: tuple[int, ...] = (128, 64), seed: int = 0,
                 name: str | None = None) -> None:
        super().__init__(table)
        self.sample_size = min(sample_size, table.num_rows)
        self.name = name or (f"MSCN-{self.sample_size}" if self.sample_size else "MSCN-0")
        rng = np.random.default_rng(seed)
        if self.sample_size:
            rows = rng.choice(table.num_rows, size=self.sample_size, replace=False)
            self._sample = table.encoded()[rows]
        else:
            self._sample = np.zeros((0, table.num_columns), dtype=np.int64)

        feature_width = _FEATURES_PER_COLUMN * table.num_columns + self.sample_size
        layers: list[nn.Module] = []
        previous = feature_width
        for width in hidden_sizes:
            layers.append(nn.Linear(previous, width, rng=rng))
            layers.append(nn.ReLU())
            previous = width
        layers.append(nn.Linear(previous, 1, rng=rng))
        self.network = nn.Sequential(*layers)
        self._rng = rng
        # Labels are log-selectivities normalised to [0, 1]; the floor is one
        # tuple out of the full relation.
        self._log_floor = math.log(1.0 / table.num_rows)
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Featurisation
    # ------------------------------------------------------------------ #
    def _featurize(self, query: Query) -> np.ndarray:
        features = np.zeros(_FEATURES_PER_COLUMN * self.table.num_columns
                            + self.sample_size)
        for predicate in query:
            column_index = self.table.column_index(predicate.column)
            column = self.table.columns[column_index]
            base = column_index * _FEATURES_PER_COLUMN
            features[base + 0] = 1.0
            operator = predicate.operator
            if operator in (Operator.EQ, Operator.NEQ, Operator.IN):
                features[base + 1] = 1.0
            elif operator in (Operator.LE, Operator.LT, Operator.BETWEEN):
                features[base + 2] = 1.0
            else:
                features[base + 3] = 1.0
            mask = predicate.valid_codes(column)
            valid = np.flatnonzero(mask)
            literal_code = float(valid.mean()) if valid.size else 0.0
            features[base + 4] = literal_code / max(column.domain_size - 1, 1)

        if self.sample_size:
            bitmap = np.ones(self.sample_size, dtype=bool)
            for column_index, mask in enumerate(query.column_masks(self.table)):
                if mask is None:
                    continue
                bitmap &= mask[self._sample[:, column_index]]
            features[-self.sample_size:] = bitmap.astype(float)
        return features

    def _label(self, selectivity: float) -> float:
        log_sel = math.log(max(selectivity, 1.0 / self.num_rows))
        return 1.0 - log_sel / self._log_floor  # 1 at sel=1, 0 at the floor

    def _unlabel(self, value: float) -> float:
        value = min(max(value, 0.0), 1.0)
        return math.exp((1.0 - value) * self._log_floor)

    # ------------------------------------------------------------------ #
    # Supervised training
    # ------------------------------------------------------------------ #
    def fit(self, training_queries: list[LabeledQuery], epochs: int = 20,
            batch_size: int = 64, learning_rate: float = 1e-3) -> list[float]:
        """Train on labelled queries; returns the per-epoch training loss."""
        if not training_queries:
            raise ValueError("MSCN requires labelled training queries")
        features = np.stack([self._featurize(item.query) for item in training_queries])
        labels = np.array([self._label(item.selectivity) for item in training_queries])

        optimizer = nn.Adam(self.network.parameters(), lr=learning_rate)
        losses = []
        for _ in range(epochs):
            order = self._rng.permutation(features.shape[0])
            epoch_loss = 0.0
            for start in range(0, features.shape[0], batch_size):
                batch = order[start:start + batch_size]
                optimizer.zero_grad()
                prediction = self.network(nn.Tensor(features[batch])).sigmoid()
                target = nn.Tensor(labels[batch].reshape(-1, 1))
                loss = nn.mse_loss(prediction, target)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * batch.size
            losses.append(epoch_loss / features.shape[0])
        self._fitted = True
        return losses

    # ------------------------------------------------------------------ #
    def estimate_selectivity(self, query: Query) -> float:
        if not self._fitted:
            raise RuntimeError("call fit() with training queries before estimating")
        features = self._featurize(query)[None, :]
        with nn.no_grad():
            prediction = self.network(nn.Tensor(features)).sigmoid().numpy()[0, 0]
        return float(self._unlabel(prediction))

    def size_bytes(self) -> int:
        return self.network.size_bytes() + int(self._sample.size * 4)
