"""Chow-Liu tree Bayesian-network estimator (PRM-style baseline / extension).

Probabilistic relational models [Getoor et al. 2001] factor the joint with a
Bayesian network of materialised conditional probability tables.  This module
implements the classic tractable instance: a Chow-Liu tree, i.e. the maximum
spanning tree of pairwise mutual information, with one CPT per edge.  It sits
between the independence heuristic (no edges) and Naru (full chain rule) and
is used by the ablation benches to show what *partial* independence buys.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..query.predicates import Query
from ..query.shapes import QueryShape
from .base import CardinalityEstimator

__all__ = ["ChowLiuEstimator"]


def _mutual_information(codes_a: np.ndarray, codes_b: np.ndarray,
                        size_a: int, size_b: int) -> float:
    """Empirical mutual information between two dictionary-coded columns."""
    joint = np.zeros((size_a, size_b))
    np.add.at(joint, (codes_a, codes_b), 1.0)
    joint /= joint.sum()
    marginal_a = joint.sum(axis=1, keepdims=True)
    marginal_b = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (marginal_a * marginal_b), 1.0)
        contributions = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(contributions.sum())


class ChowLiuEstimator(CardinalityEstimator):
    """Tree-structured Bayesian network learned with the Chow-Liu algorithm."""

    name = "BayesNet"

    def __init__(self, table: Table, smoothing: float = 1e-6) -> None:
        super().__init__(table)
        self.smoothing = smoothing
        self._parents = self._learn_tree(table)
        self._marginals = [column.marginal() for column in table.columns]
        self._cpts = self._build_cpts(table)

    def capabilities(self) -> frozenset[QueryShape]:
        """Mask-based: prefixes reduce to valid-code masks like any filter."""
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX})

    # ------------------------------------------------------------------ #
    # Structure and parameter learning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _learn_tree(table: Table) -> list[int | None]:
        """Maximum spanning tree over pairwise mutual information (Prim's)."""
        num_columns = table.num_columns
        coded = table.encoded()
        sizes = table.domain_sizes
        scores = np.zeros((num_columns, num_columns))
        for a in range(num_columns):
            for b in range(a + 1, num_columns):
                mi = _mutual_information(coded[:, a], coded[:, b], sizes[a], sizes[b])
                scores[a, b] = scores[b, a] = mi

        parents: list[int | None] = [None] * num_columns
        in_tree = {0}
        while len(in_tree) < num_columns:
            best_edge, best_score = None, -1.0
            for node in range(num_columns):
                if node in in_tree:
                    continue
                for member in in_tree:
                    if scores[member, node] > best_score:
                        best_score = scores[member, node]
                        best_edge = (member, node)
            parent, child = best_edge  # type: ignore[misc]
            parents[child] = parent
            in_tree.add(child)
        return parents

    def _build_cpts(self, table: Table) -> list[np.ndarray | None]:
        """Conditional probability tables ``P(child | parent)`` per edge."""
        coded = table.encoded()
        sizes = table.domain_sizes
        cpts: list[np.ndarray | None] = [None] * table.num_columns
        for child, parent in enumerate(self._parents):
            if parent is None:
                continue
            counts = np.full((sizes[parent], sizes[child]), self.smoothing)
            np.add.at(counts, (coded[:, parent], coded[:, child]), 1.0)
            cpts[child] = counts / counts.sum(axis=1, keepdims=True)
        return cpts

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def estimate_selectivity(self, query: Query) -> float:
        masks = query.column_masks(self.table)
        children: dict[int, list[int]] = {index: [] for index in range(self.table.num_columns)}
        roots = []
        for child, parent in enumerate(self._parents):
            if parent is None:
                roots.append(child)
            else:
                children[parent].append(child)

        def message(node: int) -> np.ndarray:
            """P(predicates in node's subtree | node value), per node value."""
            result = np.ones(self.table.domain_sizes[node])
            mask = masks[node]
            if mask is not None:
                result = result * mask
            for child in children[node]:
                child_message = message(child)          # length |A_child|
                cpt = self._cpts[child]                  # (|A_node|, |A_child|)
                result = result * (cpt @ child_message)
            return result

        selectivity = 1.0
        for root in roots:
            selectivity *= float((self._marginals[root] * message(root)).sum())
        return float(np.clip(selectivity, 0.0, 1.0))

    def size_bytes(self) -> int:
        cpt_bytes = sum(cpt.size for cpt in self._cpts if cpt is not None) * 8
        marginal_bytes = sum(m.size for m in self._marginals) * 8
        return int(cpt_bytes + marginal_bytes)
