"""Uniform-sample estimator (``Sample`` in Table 2 of the paper).

Keeps ``p%`` of the tuples (dictionary-encoded) in memory and answers a query
by counting how many sampled tuples satisfy it.  Excellent for medium and high
selectivities, but collapses on low-selectivity queries once the sample
contains no qualifying tuple — the failure mode the paper highlights.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..query.predicates import DNFQuery, Query
from ..query.shapes import QueryShape
from .base import CardinalityEstimator

__all__ = ["SamplingEstimator"]


class SamplingEstimator(CardinalityEstimator):
    """Uniform row sample kept in memory."""

    def __init__(self, table: Table, fraction: float | None = 0.01,
                 sample_size: int | None = None, seed: int = 0) -> None:
        """Build the sample.

        Parameters
        ----------
        table:
            The relation.
        fraction:
            Fraction of rows to keep (ignored when ``sample_size`` is given).
        sample_size:
            Absolute number of sampled rows.
        seed:
            Sampling seed.
        """
        super().__init__(table)
        rng = np.random.default_rng(seed)
        if sample_size is None:
            if fraction is None or not 0.0 < fraction <= 1.0:
                raise ValueError("fraction must be in (0, 1] when sample_size is absent")
            sample_size = max(1, int(round(fraction * table.num_rows)))
        sample_size = min(sample_size, table.num_rows)
        rows = rng.choice(table.num_rows, size=sample_size, replace=False)
        self._sample = table.encoded()[rows]
        self.name = f"Sample({sample_size / table.num_rows:.1%})"

    @property
    def sample_size(self) -> int:
        """Number of tuples retained in the sample."""
        return int(self._sample.shape[0])

    def capabilities(self) -> frozenset[QueryShape]:
        """Row-level access serves every shape: masks handle prefixes, and
        disjunctions union per-branch row masks over the sample — no
        inclusion–exclusion needed, and no branch-count bound either."""
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX,
                          QueryShape.DISJUNCTIVE})

    def estimate_selectivity(self, query: "Query | DNFQuery") -> float:
        if isinstance(query, DNFQuery):
            mask = np.zeros(self._sample.shape[0], dtype=bool)
            for branch in query.branches:
                mask |= self._qualifying_sample_rows(branch)
            return float(mask.mean())
        return float(self._qualifying_sample_rows(query).mean())

    def _qualifying_sample_rows(self, query: Query) -> np.ndarray:
        mask = np.ones(self._sample.shape[0], dtype=bool)
        for column_index, domain_mask in enumerate(query.column_masks(self.table)):
            if domain_mask is None:
                continue
            mask &= domain_mask[self._sample[:, column_index]]
            if not mask.any():
                break
        return mask

    def size_bytes(self) -> int:
        return int(self._sample.size * 4)
