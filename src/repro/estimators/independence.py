"""The independence heuristic (``Indep`` in Table 2 of the paper).

Per-column selectivities are computed *exactly* (full scan of each column) and
combined by multiplication.  Any error this estimator makes is therefore
attributable purely to the attribute-value-independence assumption — it is the
control case that quantifies how much correlation matters.
"""

from __future__ import annotations


from ..data.table import Table
from ..query.predicates import Query
from ..query.shapes import QueryShape
from .base import CardinalityEstimator

__all__ = ["IndependenceEstimator"]


class IndependenceEstimator(CardinalityEstimator):
    """Product of exact per-column selectivities."""

    name = "Indep"

    def __init__(self, table: Table) -> None:
        super().__init__(table)
        # Exact per-column marginals over the dictionary codes.
        self._marginals = [column.marginal() for column in table.columns]

    def capabilities(self) -> frozenset[QueryShape]:
        """Mask-based: prefixes reduce to valid-code masks like any filter."""
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX})

    def estimate_selectivity(self, query: Query) -> float:
        selectivity = 1.0
        for marginal, mask in zip(self._marginals, query.column_masks(self.table)):
            if mask is None:
                continue
            selectivity *= float(marginal[mask].sum())
            if selectivity == 0.0:
                break
        return selectivity

    def size_bytes(self) -> int:
        return int(sum(marginal.size for marginal in self._marginals) * 8)
