"""Ground-truth "estimator": exact selectivities by scanning the relation.

Not a real estimator (it reads the full data at query time), but useful as a
sanity check in tests and as the upper bound of achievable accuracy in the
benchmark harness.
"""

from __future__ import annotations

from ..data.table import Table
from ..query.executor import true_selectivity
from ..query.predicates import Query
from .base import CardinalityEstimator

__all__ = ["TruthEstimator"]


class TruthEstimator(CardinalityEstimator):
    """Exact selectivities via full scans (q-error is always 1)."""

    name = "Truth"

    def __init__(self, table: Table) -> None:
        super().__init__(table)

    def estimate_selectivity(self, query: Query) -> float:
        return true_selectivity(self.table, query)

    def size_bytes(self) -> int:
        return self.table.in_memory_bytes()
