"""Common interface implemented by every selectivity estimator in the package.

All estimators — Naru itself and the baselines from Table 2 of the paper —
answer the same question: given a conjunctive range/equality query, what
fraction (selectivity) or number (cardinality) of the relation's tuples
satisfies it?  The shared interface lets the benchmark harness treat them
uniformly and enforce per-dataset storage budgets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from ..data.table import Table
from ..query.predicates import DNFQuery, Query, dnf_expansion
from ..query.shapes import QueryShape, query_shape

__all__ = ["CardinalityEstimator"]


class CardinalityEstimator(ABC):
    """Base class for selectivity/cardinality estimators.

    Subclasses are constructed (and, for learned estimators, trained) against
    a specific :class:`~repro.data.table.Table` and afterwards answer queries
    without touching the raw data again (except for the sampling baselines
    that explicitly keep a sample).
    """

    #: Human-readable estimator name used in reports (e.g. ``"Naru-2000"``).
    name: str = "estimator"

    def __init__(self, table: Table) -> None:
        self.table = table
        self.num_rows = table.num_rows

    # ------------------------------------------------------------------ #
    def capabilities(self) -> frozenset[QueryShape]:
        """Query shapes this estimator can answer.

        The default is the paper's language — plain conjunctions.  Estimators
        that consume per-column valid-code masks also serve ``PREFIX``
        (``LIKE 'x%'`` reduces to a mask like any comparison), and estimators
        with a union strategy (native row-mask unions, or the
        inclusion–exclusion expansion) additionally serve ``DISJUNCTIVE``.
        The serving router matches :func:`repro.query.shapes.query_shape`
        against this set when picking an estimator for a query.
        """
        return frozenset({QueryShape.CONJUNCTIVE})

    def can_serve(self, query: "Query | DNFQuery") -> bool:
        """Whether this estimator can answer the query's shape.

        Subclasses may refine this beyond the pure shape check — e.g. the
        Naru estimator bounds the branch count of disjunctions it is willing
        to expand.
        """
        return query_shape(query) in self.capabilities()

    # ------------------------------------------------------------------ #
    @abstractmethod
    def estimate_selectivity(self, query: Query) -> float:
        """Estimated fraction of tuples satisfying ``query`` (in ``[0, 1]``)."""

    def estimate_cardinality(self, query: "Query | DNFQuery") -> float:
        """Estimated number of tuples satisfying ``query``."""
        return self.estimate_selectivity(query) * self.num_rows

    def _inclusion_exclusion(self, query: DNFQuery,
                             estimate: Callable[[Query], float]) -> float:
        """Selectivity of a DNF query by inclusion–exclusion over conjunctions.

        Every expansion term is a plain conjunctive :class:`Query` (branch
        intersections concatenate predicate lists), so any
        conjunctive-capable subclass can serve disjunctions by passing its
        own conjunctive estimator here.  The signed sum is clipped to
        ``[0, 1]`` to absorb estimation noise in the cross terms.
        """
        total = sum(sign * estimate(term) for sign, term in dnf_expansion(query))
        return float(min(max(total, 0.0), 1.0))

    def size_bytes(self) -> int:
        """Approximate storage footprint of the estimator's summary/model."""
        return 0

    # ------------------------------------------------------------------ #
    def set_row_count(self, num_rows: int) -> None:
        """Update the relation cardinality used to scale selectivities.

        Needed by the data-shift study (Table 8), where new partitions grow
        the relation while a *stale* estimator keeps its old model.
        """
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.num_rows = num_rows

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
