"""Baseline selectivity estimators (Table 2 of the paper) plus extensions."""

from .base import CardinalityEstimator
from .bayesnet import ChowLiuEstimator
from .dbms1 import DBMS1Estimator
from .histogram import MultiDimHistogramEstimator
from .independence import IndependenceEstimator
from .kde import KDEEstimator, KDESupervEstimator
from .mscn import MSCNEstimator
from .postgres import PostgresEstimator
from .sampling import SamplingEstimator
from .truth import TruthEstimator

__all__ = [
    "CardinalityEstimator",
    "IndependenceEstimator",
    "MultiDimHistogramEstimator",
    "PostgresEstimator",
    "DBMS1Estimator",
    "SamplingEstimator",
    "KDEEstimator",
    "KDESupervEstimator",
    "MSCNEstimator",
    "ChowLiuEstimator",
    "TruthEstimator",
]
