"""Postgres-style estimator: per-column MCVs + equi-depth histograms + AVI.

Emulates what a practitioner gets from ``ANALYZE`` with a high statistics
target: for every column a most-common-values (MCV) list with frequencies and
an equi-depth histogram of the remaining values.  Per-predicate selectivities
follow Postgres' formulas (MCV hit, uniform share of the non-MCV distinct
values for misses, histogram interpolation for ranges) and are combined under
the attribute-value-independence assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Column, Table
from ..query.predicates import Operator, Predicate, Query
from .base import CardinalityEstimator

__all__ = ["PostgresEstimator", "ColumnStatistics"]


@dataclass
class ColumnStatistics:
    """Single-column statistics: MCV list plus equi-depth histogram."""

    mcv_codes: np.ndarray
    mcv_fractions: np.ndarray
    histogram_bounds: np.ndarray  # code-space bucket boundaries of non-MCV rows
    non_mcv_fraction: float
    non_mcv_distinct: int
    domain_size: int

    @classmethod
    def build(cls, column: Column, num_mcvs: int, num_histogram_bounds: int
              ) -> "ColumnStatistics":
        counts = column.value_counts()
        total = counts.sum()
        order = np.argsort(counts)[::-1]
        mcv_codes = order[:num_mcvs]
        mcv_codes = mcv_codes[counts[mcv_codes] > 0]
        mcv_fractions = counts[mcv_codes] / total

        non_mcv_mask = np.ones(column.domain_size, dtype=bool)
        non_mcv_mask[mcv_codes] = False
        non_mcv_counts = counts * non_mcv_mask
        non_mcv_fraction = float(non_mcv_counts.sum() / total)
        non_mcv_distinct = int((non_mcv_counts > 0).sum())

        # Equi-depth histogram over the non-MCV rows (Postgres' histogram
        # excludes the MCVs).  Bounds are dictionary codes.
        if non_mcv_counts.sum() > 0 and num_histogram_bounds > 1:
            repeated = np.repeat(np.arange(column.domain_size), non_mcv_counts.astype(int))
            quantiles = np.linspace(0.0, 1.0, num_histogram_bounds)
            bounds = np.quantile(repeated, quantiles, method="nearest")
        else:
            bounds = np.array([0, column.domain_size - 1])
        return cls(mcv_codes=mcv_codes, mcv_fractions=mcv_fractions,
                   histogram_bounds=bounds, non_mcv_fraction=non_mcv_fraction,
                   non_mcv_distinct=max(non_mcv_distinct, 1),
                   domain_size=column.domain_size)

    # ------------------------------------------------------------------ #
    def equality_selectivity(self, code: int | None) -> float:
        """Selectivity of ``column = value`` (``code`` is None if absent)."""
        if code is not None:
            hit = np.flatnonzero(self.mcv_codes == code)
            if hit.size:
                return float(self.mcv_fractions[hit[0]])
        # Not an MCV: uniform share of the non-MCV mass.
        return self.non_mcv_fraction / self.non_mcv_distinct

    def range_selectivity(self, low_code: float, high_code: float) -> float:
        """Selectivity of ``low_code <= column_code <= high_code`` (inclusive)."""
        if high_code < low_code:
            return 0.0
        # Contribution of MCVs inside the range (exact).
        in_range = (self.mcv_codes >= low_code) & (self.mcv_codes <= high_code)
        selectivity = float(self.mcv_fractions[in_range].sum())
        # Contribution of the histogram portion, by linear interpolation.
        bounds = self.histogram_bounds
        if self.non_mcv_fraction > 0 and bounds.size >= 2:
            buckets = bounds.size - 1
            covered = 0.0
            for bucket in range(buckets):
                left, right = float(bounds[bucket]), float(bounds[bucket + 1])
                width = max(right - left, 1e-9)
                overlap = max(0.0, min(right, high_code) - max(left, low_code))
                covered += min(overlap / width, 1.0)
            selectivity += self.non_mcv_fraction * covered / buckets
        return min(selectivity, 1.0)

    def size_bytes(self) -> int:
        return int((self.mcv_codes.size * 2 + self.histogram_bounds.size) * 8)


class PostgresEstimator(CardinalityEstimator):
    """1-D statistics combined with independence and uniformity assumptions."""

    name = "Postgres"

    def __init__(self, table: Table, num_mcvs: int = 100,
                 num_histogram_bounds: int = 101) -> None:
        super().__init__(table)
        self.statistics = [ColumnStatistics.build(column, num_mcvs, num_histogram_bounds)
                           for column in table.columns]

    # ------------------------------------------------------------------ #
    def _predicate_selectivity(self, predicate: Predicate) -> float:
        column_index = self.table.column_index(predicate.column)
        column = self.table.columns[column_index]
        stats = self.statistics[column_index]
        operator = predicate.operator

        if operator in (Operator.EQ, Operator.NEQ):
            try:
                code = column.value_to_code(predicate.value)
            except KeyError:
                code = None
            selectivity = stats.equality_selectivity(code)
            return 1.0 - selectivity if operator is Operator.NEQ else selectivity
        if operator is Operator.IN:
            total = 0.0
            for value in predicate.value:
                try:
                    code = column.value_to_code(value)
                except KeyError:
                    code = None
                total += stats.equality_selectivity(code)
            return min(total, 1.0)
        if operator is Operator.LE:
            return stats.range_selectivity(0, column.codes_leq(predicate.value) - 1)
        if operator is Operator.LT:
            return stats.range_selectivity(0, column.codes_lt(predicate.value) - 1)
        if operator is Operator.GE:
            return stats.range_selectivity(column.codes_lt(predicate.value),
                                           column.domain_size - 1)
        if operator is Operator.GT:
            return stats.range_selectivity(column.codes_leq(predicate.value),
                                           column.domain_size - 1)
        if operator is Operator.BETWEEN:
            low, high = predicate.value
            return stats.range_selectivity(column.codes_lt(low),
                                           column.codes_leq(high) - 1)
        raise AssertionError(f"unhandled operator {operator!r}")

    def predicate_selectivities(self, query: Query) -> list[float]:
        """Per-predicate selectivities (exposed for the DBMS-1 subclass)."""
        return [self._predicate_selectivity(predicate) for predicate in query]

    def estimate_selectivity(self, query: Query) -> float:
        selectivity = 1.0
        for value in self.predicate_selectivities(query):
            selectivity *= value
        return float(np.clip(selectivity, 0.0, 1.0))

    def size_bytes(self) -> int:
        return int(sum(stats.size_bytes() for stats in self.statistics))
