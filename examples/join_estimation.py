"""Selectivity estimation over a join result (§4.1 of the paper).

Naru does not distinguish between base tables and join results: once the
estimator sees tuples of the joined relation it supports filters on any column
of either input.  This example materialises a sessions ⋈ users join, trains an
estimator on it, and answers queries that filter both sides.

Run with::

    python examples/join_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import NaruConfig, NaruEstimator
from repro.data import ColumnSpec, JoinSampler, Table, hash_join, make_correlated_table
from repro.query import Query, q_error, true_cardinality


def build_tables() -> tuple[Table, Table]:
    """A users dimension table and a sessions fact table sharing user_id."""
    rng = np.random.default_rng(0)
    num_users = 400
    users = Table.from_dict({
        "user_id": np.arange(num_users),
        "plan": rng.choice(["free", "pro", "enterprise"], size=num_users,
                           p=[0.7, 0.25, 0.05]),
        "country": rng.choice([f"country_{i}" for i in range(12)], size=num_users),
    }, name="users")

    sessions = make_correlated_table([
        ColumnSpec("device", 6, "categorical", skew=1.4),
        ColumnSpec("duration_s", 300, "ordinal", skew=1.1),
        ColumnSpec("errors", 5, "categorical", skew=1.8),
    ], num_rows=12_000, seed=1, name="sessions_base")
    session_users = rng.integers(0, num_users, size=sessions.num_rows)
    sessions = Table.from_dict({
        "user_id": session_users,
        "device": sessions.column("device").values,
        "duration_s": sessions.column("duration_s").values,
        "errors": sessions.column("errors").values,
    }, name="sessions")
    return sessions, users


def main() -> None:
    sessions, users = build_tables()

    # Route 1: materialise the join and train on it.
    joined = hash_join(sessions, users, "user_id", "user_id", name="sessions_users")
    print(f"Materialised join: {joined}")

    naru = NaruEstimator(joined, NaruConfig(epochs=8, hidden_sizes=(64, 64),
                                            batch_size=128, progressive_samples=800))
    naru.fit()

    query = Query.from_tuples([
        ("plan", "=", "pro"),                  # users-side filter
        ("errors", "=", "errors_0"),           # sessions-side filter
        ("duration_s", ">=", int(joined.column("duration_s").domain[100])),
    ])
    estimate = naru.estimate_cardinality(query)
    actual = true_cardinality(joined, query)
    print(f"\nJoin query: {query}")
    print(f"  estimated: {estimate:9.1f}   actual: {actual}   "
          f"q-error: {q_error(estimate, actual):.2f}")

    # Route 2: no materialisation — train on tuples produced by a join sampler.
    sampler = JoinSampler(sessions, users, "user_id", "user_id", seed=3)
    sampled_join = sampler.sample_table(8_000, name="sampled_join")
    naru_sampled = NaruEstimator(sampled_join,
                                 NaruConfig(epochs=8, hidden_sizes=(64, 64),
                                            batch_size=128, progressive_samples=800))
    naru_sampled.fit()
    naru_sampled.set_row_count(joined.num_rows)  # scale to the true join size
    estimate = naru_sampled.estimate_cardinality(query)
    print(f"\nSame query, estimator trained on sampled join tuples only:")
    print(f"  estimated: {estimate:9.1f}   actual: {actual}   "
          f"q-error: {q_error(estimate, actual):.2f}")


if __name__ == "__main__":
    main()
