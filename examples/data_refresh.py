"""Handling data shifts: stale vs periodically refreshed estimators (§6.7.3).

The relation grows one partition at a time (think "one new day of data").  A
stale estimator keeps the model it learned on day one; a refreshed estimator
receives a quick fine-tuning pass after every ingest.  The example prints how
the worst-case error of each evolves — a miniature of the paper's Table 8.

Run with::

    python examples/data_refresh.py
"""

from __future__ import annotations

import numpy as np

from repro.core import NaruConfig, NaruEstimator
from repro.data import make_dmv, partition_by_column
from repro.query import WorkloadGenerator, q_error, true_selectivity


def encode_with_full_dictionary(full_table, part):
    """Encode a partition's rows with the full table's dictionaries."""
    return np.stack([
        np.searchsorted(full_table.column(name).domain, part.column(name).values)
        for name in full_table.column_names
    ], axis=1)


def main() -> None:
    table = make_dmv(num_rows=10_000)
    partitions = partition_by_column(table, "valid_date", 5)

    config = NaruConfig(epochs=0, hidden_sizes=(96, 96), batch_size=128,
                        progressive_samples=800)
    stale = NaruEstimator(table, config)
    refreshed = NaruEstimator(table, config)

    first = encode_with_full_dictionary(table, partitions[0])
    for estimator in (stale, refreshed):
        estimator.refresh(first, epochs=10)
        estimator._fitted = True

    queries = WorkloadGenerator(partitions[0], min_filters=5, max_filters=11,
                                seed=11).generate(30)

    visible = partitions[0]
    visible_codes = first
    print(f"{'ingested':>9} {'stale max':>12} {'refreshed max':>15}")
    for index, part in enumerate(partitions):
        if index > 0:
            visible = visible.concat(part)
            visible_codes = np.concatenate(
                [visible_codes, encode_with_full_dictionary(table, part)])
            refreshed.refresh(visible_codes, epochs=1)
        for estimator in (stale, refreshed):
            estimator.set_row_count(visible.num_rows)

        errors = {"stale": [], "refreshed": []}
        for query in queries:
            truth = true_selectivity(visible, query) * visible.num_rows
            errors["stale"].append(q_error(stale.estimate_cardinality(query), truth))
            errors["refreshed"].append(q_error(refreshed.estimate_cardinality(query), truth))
        print(f"{index + 1:>9} {max(errors['stale']):>12.1f} {max(errors['refreshed']):>15.1f}")


if __name__ == "__main__":
    main()
