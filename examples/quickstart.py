"""Quickstart: train a Naru estimator and compare its estimates to the truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import NaruConfig, NaruEstimator
from repro.data import make_census
from repro.query import Query, WorkloadGenerator, q_error, true_cardinality


def main() -> None:
    # 1. Get a relation.  Any Table works: synthetic generators, read_csv(), or
    #    a materialised join.  Here we use the census-like generator.
    table = make_census(num_rows=8_000)
    print(f"Relation: {table} (joint space ~10^{table.log_joint_size():.0f})")

    # 2. Build and train the estimator.  Training is unsupervised: Naru only
    #    reads tuples, no queries or feedback are involved.
    config = NaruConfig(epochs=10, hidden_sizes=(96, 96), batch_size=128,
                        progressive_samples=1000)
    naru = NaruEstimator(table, config)
    history = naru.fit()
    print(f"Trained {history.num_epochs} epochs; "
          f"final loss {history.epoch_losses_bits[-1]:.2f} bits/tuple; "
          f"entropy gap {naru.entropy_gap_bits():.2f} bits; "
          f"model size {naru.size_bytes() / 1e6:.2f} MB")

    # 3. Ask it questions.  A hand-written query:
    query = Query.from_tuples([
        ("sex", "=", "sex_0"),
        ("age", "<=", int(table.column("age").domain[40])),
        ("education", "=", "education_0"),
    ])
    estimate = naru.estimate_cardinality(query)
    actual = true_cardinality(table, query)
    print(f"\nQuery: {query}")
    print(f"  estimated cardinality: {estimate:8.1f}")
    print(f"  actual cardinality:    {actual:8d}")
    print(f"  q-error:               {q_error(estimate, actual):8.2f}")

    # 4. And a random multi-filter workload:
    print("\nRandom 5-8 filter workload:")
    generator = WorkloadGenerator(table, min_filters=5, max_filters=8, seed=7)
    for item in generator.generate_labeled(5):
        estimate = naru.estimate_cardinality(item.query)
        print(f"  true={item.cardinality:6d}  est={estimate:9.1f}  "
              f"q-error={q_error(estimate, item.cardinality):6.2f}   {item.query}")


if __name__ == "__main__":
    main()
