"""Async streaming submission with an end-to-end SLO-aware batch size.

Queries do not have to arrive as a list: this example streams a bursty
workload one query at a time through :class:`repro.serve.AsyncFleetClient`
(pure asyncio — the engines stay synchronous and single-threaded underneath)
into a :class:`repro.serve.StreamingRouter` whose micro-batch size *adapts*:
an AIMD controller per relation watches an **end-to-end** latency EWMA
(queueing delay + dispatch — what a submitter actually waits) and halves
the batch size whenever it threatens the p95 SLO, growing it back once the
burst passes.

Three properties are demonstrated:

* **SLO compliance** — under bursty arrivals a fixed max-size micro-batch
  pays a full-batch dispatch latency on every burst; the adaptive router
  shrinks its batches until the p95 end-to-end latency fits the target.
* **Streaming determinism** — every query's estimate is keyed by
  ``(seed, global submission index)`` alone, so the streamed run returns
  exactly the numbers of one big batched ``run()`` call, at any batch size.
* **Awaitable backpressure** — concurrent producers over a bounded replica
  group suspend in ``await client.submit_async(...)`` at the admission
  limit instead of seeing per-submit ``AdmissionError`` storms; the flush
  timeout keeps partial batches moving, so nothing is shed.

Run with::

    python examples/streaming_slo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core import NaruConfig
from repro.data import make_sessions, make_users
from repro.serve import (
    AsyncFleetClient,
    FleetRouter,
    ModelRegistry,
    StreamingRouter,
    generate_bursty_workload,
    stream_workload,
)


def build_fleet(num_users: int, num_rows: int, epochs: int,
                samples: int) -> ModelRegistry:
    """Train the two-relation fleet the example streams into."""
    registry = ModelRegistry(default_config=NaruConfig(
        epochs=epochs, hidden_sizes=(32, 32), batch_size=256,
        progressive_samples=samples))
    registry.register_table(make_users(num_users))
    registry.register_table(make_sessions(num_rows, num_users=num_users))
    registry.fit_all()
    return registry


async def multi_producers(router: StreamingRouter, queries,
                          producers: int = 4):
    """Drive one bounded router from N concurrent producers.

    Each producer awaits ``submit_async``: at the group's ``max_pending``
    the call suspends until a micro-batch dispatches (by filling up or by
    the flush timeout), so admission control becomes cooperative queueing
    rather than shed errors.
    """
    async with AsyncFleetClient(router) as client:
        async def produce(chunk):
            for query in chunk:
                await client.submit_async(query)

        await asyncio.gather(*(produce(queries[offset::producers])
                               for offset in range(producers)))
        return await client.drain()


async def stream(router: StreamingRouter, queries) -> list:
    """Submit every query one at a time, then drain the outstanding futures.

    ``async with`` drains on exit and detaches the client's observer from
    the router — the lifecycle a long-lived service should copy.
    """
    async with AsyncFleetClient(router) as client:
        futures = []
        for query in queries:
            futures.append(client.submit(query))
            await asyncio.sleep(0)  # yield, like an independent producer would
        await client.drain()
    return [future.result() for future in futures]


def main(num_users: int = 300, num_rows: int = 4_000, epochs: int = 5,
         num_queries: int = 64, samples: int = 400, max_batch: int = 16,
         burst_size: int = 8) -> None:
    """Run the demonstration end to end (shrunk by tests to smoke scale)."""
    # 1. A fleet of two relations; the sessions fact table is the hot one and
    #    its queries will arrive in uninterrupted bursts.
    registry = build_fleet(num_users, num_rows, epochs, samples)
    workload = generate_bursty_workload(
        {name: registry.relation(name) for name in registry.names},
        num_queries, hot="sessions", burst_size=burst_size,
        seed=0, weights={"users": 0.25, "sessions": 0.75})

    # 2. Baseline: a fixed max-size micro-batch, served as one batch call.
    #    Every burst fills a whole batch, so every query in it pays the
    #    full-batch dispatch latency.  (Caches off: comparable latencies.)
    fixed = FleetRouter(registry, batch_size=max_batch, use_cache=False,
                        num_samples=samples, seed=0)
    fixed_report = fixed.run(workload)
    fixed_p95 = fixed_report.stats.routes["sessions"]["e2e_ms"]["p95"]
    slo_ms = 0.4 * fixed_p95  # the target the fixed batch cannot meet
    print(f"Fixed batch={max_batch}: sessions p95 end-to-end latency "
          f"{fixed_p95:.1f} ms -> stating a {slo_ms:.1f} ms e2e p95 SLO")

    # 3. Stream the same workload, query by query, into an adaptive router.
    #    This first pass starts at the full batch size, so its p95 still
    #    carries the initial oversized dispatches — watch the controller
    #    shrink the batch mid-stream instead.
    router = StreamingRouter(registry, batch_size=max_batch, use_cache=False,
                             num_samples=samples, seed=0,
                             slo_ms=slo_ms, adaptive=True,
                             flush_after_ms=max(slo_ms / 4.0, 1.0))
    results = asyncio.run(stream(router, workload))
    report = router.report()
    stats = report.stats.routes["sessions"]
    trace = stats["batch_trace"]
    print(f"Adaptive stream (converging): batch size {trace[0]} -> "
          f"{trace[-1]} over {stats['num_batches']} dispatches, "
          f"e2e p95 {stats['e2e_ms']['p95']:.1f} ms")

    # 4. Controllers outlive workload scopes (like the caches), so a replay
    #    starts at the converged batch size: the steady state an always-on
    #    service operates in, and where the SLO must hold.
    steady = stream_workload(router, workload)
    steady_p95 = steady.stats.routes["sessions"]["e2e_ms"]["p95"]
    print(f"Steady-state stream: e2e p95 {steady_p95:.1f} ms "
          f"({'meets' if steady_p95 <= slo_ms else 'misses'} the "
          f"{slo_ms:.1f} ms SLO, "
          f"{steady.stats.timeout_flushes} timeout flushes)")

    # 5. Streaming and adaptive batching changed nothing: the futures carry
    #    the very numbers the one-shot batched run computed.
    drift = float(np.max(np.abs(
        np.asarray([result.selectivity for result in results])
        - fixed_report.selectivities)))
    print(f"Streaming vs batched estimate drift: {drift:.2e}")

    # 6. Multi-producer backpressure: bound the groups well below the batch
    #    size under the *shed* policy.  Synchronous submission would storm
    #    AdmissionError; submit_async suspends the producers at the limit
    #    and the flush timeout keeps freeing capacity — nothing is shed.
    bounded = StreamingRouter(registry, batch_size=max_batch, use_cache=False,
                              num_samples=samples, seed=0,
                              max_pending=max(max_batch // 2, 1),
                              overflow="shed", flush_after_ms=25.0)
    backpressured = asyncio.run(multi_producers(bounded, workload))
    print(f"Backpressure: {backpressured.stats.num_queries} queries from 4 "
          f"producers, {backpressured.stats.shed} shed, "
          f"{backpressured.stats.timeout_flushes} timeout flushes, "
          f"e2e p95 {backpressured.e2e_percentiles['p95']:.1f} ms")


if __name__ == "__main__":
    main()
