"""Compare Naru against classical estimators on a DMV-like workload.

This is a miniature version of the paper's Table 3: every estimator family is
built on the same synthetic DMV table and evaluated on the same multi-filter
workload, reporting q-error quantiles grouped by true selectivity.

Run with::

    python examples/estimator_comparison.py
"""

from __future__ import annotations

from repro.bench import accuracy_by_bucket, compare_estimators, format_accuracy_table
from repro.core import NaruConfig, NaruEstimator
from repro.data import make_dmv
from repro.estimators import (
    DBMS1Estimator,
    IndependenceEstimator,
    PostgresEstimator,
    SamplingEstimator,
)
from repro.query import WorkloadGenerator


def main() -> None:
    table = make_dmv(num_rows=10_000)
    print(f"Dataset: {table}")

    naru = NaruEstimator(table, NaruConfig(epochs=10, hidden_sizes=(96, 96),
                                           batch_size=128, progressive_samples=1000))
    naru.fit()

    estimators = [
        IndependenceEstimator(table),
        PostgresEstimator(table),
        DBMS1Estimator(table),
        SamplingEstimator(table, fraction=0.013),
        naru,
    ]

    workload = WorkloadGenerator(table, min_filters=5, max_filters=11,
                                 seed=123).generate_labeled(80)
    runs = compare_estimators(estimators, workload)
    print(format_accuracy_table(accuracy_by_bucket(runs),
                                "Mini Table 3: q-errors by selectivity bucket"))

    print("\nEstimator storage footprints:")
    for estimator in estimators:
        print(f"  {estimator.name:<14} {estimator.size_bytes() / 1e6:6.2f} MB")


if __name__ == "__main__":
    main()
