"""Serving workloads: batched + cached estimation with ``repro.serve``.

Trains one Naru model, then answers the same 64-query workload two ways —
one query at a time (how the paper evaluates, §6.1) and through the
:class:`repro.serve.EstimationEngine`, which packs queries into micro-batches,
shares the per-column model forward passes between them and memoises repeated
sample-path prefixes in an LRU cache.  Both modes use the same per-query
random streams, so they return the same estimates; only the throughput
changes.

Run with::

    python examples/serving_throughput.py
"""

from __future__ import annotations

import numpy as np

from repro.core import NaruConfig, NaruEstimator
from repro.data import make_census
from repro.query import WorkloadGenerator, true_selectivities
from repro.serve import EstimationEngine, run_sequential


def main() -> None:
    # 1. One model serves the whole workload: train it once.
    table = make_census(num_rows=2_000)
    naru = NaruEstimator(table, NaruConfig(epochs=8, hidden_sizes=(64, 64),
                                           batch_size=256,
                                           progressive_samples=1_000))
    naru.fit()
    print(f"Serving {table} with a {naru.size_bytes() / 1e6:.2f} MB model")

    # 2. A paper-style workload (5-11 filters per query, literals from data).
    queries = WorkloadGenerator(table, min_filters=5, max_filters=11,
                                seed=7).generate(64)

    # 3. The paper's regime: one progressive-sampling run per query.
    sequential = run_sequential(naru, queries, seed=0)
    print(f"sequential: {sequential.stats.queries_per_second:6.1f} queries/s "
          f"({sequential.stats.elapsed_s * 1000:.0f} ms total)")

    # 4. The serving regime: micro-batches + conditional-probability cache.
    engine = EstimationEngine(naru, batch_size=16, seed=0)
    batched = engine.run(queries)
    cache = batched.stats.cache
    print(f"batched:    {batched.stats.queries_per_second:6.1f} queries/s "
          f"({batched.stats.elapsed_s * 1000:.0f} ms total, "
          f"{batched.stats.num_batches} micro-batches)")
    print(f"  speedup        {sequential.stats.elapsed_s / batched.stats.elapsed_s:.1f}x")
    print(f"  cache          {cache['hits']} hits / {cache['misses']} misses "
          f"({cache['hit_rate']:.0%} hit rate)")
    print(f"  model rows     {cache['rows_evaluated']} evaluated, "
          f"{cache['rows_served_from_cache']} served from memory")

    # 5. Same answers either way (bounded by float round-off), and sane ones:
    drift = np.max(np.abs(batched.selectivities - sequential.selectivities))
    print(f"  estimate drift {drift:.2e}")
    truth = true_selectivities(table, queries)
    worst = np.max(np.abs(batched.selectivities - truth))
    print(f"  worst |estimate - truth| on this workload: {worst:.3f}")


if __name__ == "__main__":
    main()
