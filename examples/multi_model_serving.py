"""Multi-model serving: one registry, many relations, routed workloads.

The paper treats a materialised or sampled join exactly like a base table
(§4.1): once an estimator sees tuples of the joined relation, nothing else
changes.  This example takes that to its serving conclusion — a
:class:`repro.serve.ModelRegistry` holding two base tables *and* their join as
first-class named relations, fronted by a :class:`repro.serve.FleetRouter`
that routes a mixed, table-qualified workload to the right model, keeps
per-model micro-batches and caches, and merges everything into one fleet
report.

Run with::

    python examples/multi_model_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import NaruConfig
from repro.data import JoinSpec, make_sessions, make_users
from repro.serve import (
    FleetRouter,
    ModelRegistry,
    RoutingError,
    generate_mixed_workload,
    run_fleet_sequential,
)


def main() -> None:
    # 1. Register the relations: two base tables plus their equi-join.  The
    #    join is materialised through repro.data.hash_join and registered as
    #    a named relation like any base table (how="sample" would draw
    #    tuples through a JoinSampler instead, the paper's big-join route).
    registry = ModelRegistry(default_config=NaruConfig(
        epochs=6, hidden_sizes=(64, 64), batch_size=256,
        progressive_samples=500))
    registry.register_table(make_users(400))
    # The fact table is the hot relation: two engine replicas share its one
    # trained model (replication never retrains and never changes a number).
    registry.register_table(make_sessions(6_000, num_users=400), replicas=2)
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))

    # 2. Train the whole fleet up front (lazy fit-on-first-query also works),
    #    then read the rolled-up storage budget.
    registry.fit_all()
    for name, entry in registry.size_report().items():
        kind = "join" if entry["is_join"] else "base"
        print(f"  {name:<22} {kind:<5} {entry['num_rows']:>6} rows  "
              f"model {entry['model_bytes'] / 1e6:.2f} MB")
    print(f"Fleet model storage: {registry.size_bytes() / 1e6:.2f} MB")

    # 3. A mixed workload: every query carries a table qualifier naming the
    #    relation it targets, interleaved so micro-batch windows mix routes.
    workload = generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names},
        48, min_filters=2, max_filters=4, seed=0)

    # 4. Serve it through the router: per-model micro-batches, per-model LRU
    #    caches under one shared budget, an exact-match result cache over the
    #    whole fleet, and merged per-route statistics.
    router = FleetRouter(registry, batch_size=8, cache_entries=98_304, seed=0,
                         result_cache=True)
    report = router.run(workload)
    print(f"\nServed {report.stats.num_queries} queries across "
          f"{report.stats.num_models} models "
          f"({report.stats.queries_per_second:.0f} queries/s)")
    for route, stats in report.stats.routes.items():
        replicas = (f" on {stats['num_replicas']} replicas"
                    if stats["num_replicas"] > 1 else "")
        print(f"  {route:<22} {stats['num_queries']:>3} queries  "
              f"{stats['queries_per_second']:7.1f} q/s  "
              f"cache hit rate {stats['cache']['hit_rate']:.0%}{replicas}")

    # 4b. Replay the workload: the result cache answers every repeat from
    #     memory, bit-for-bit, without touching a model.
    replay = router.run(workload)
    # Note: stats.result_cache holds *lifetime* counters (cold misses included);
    # the replay-scope rate comes from the report's own hit count.
    print(f"Replay served {replay.result_cache_hits}/{len(workload)} queries "
          f"from the result cache "
          f"({replay.result_cache_hits / replay.stats.num_queries:.0%} of "
          "this replay)")

    # 5. Routing never changes the answers: every query's random stream is
    #    keyed by (seed, global workload index), so N independent sequential
    #    engines return the same estimates — only slower.
    baseline = run_fleet_sequential(registry, workload, seed=0)
    drift = float(np.max(np.abs(report.selectivities - baseline.selectivities)))
    speedup = baseline.stats.elapsed_s / report.stats.elapsed_s
    print(f"\nSequential fleet baseline: {speedup:.1f}x slower, "
          f"max estimate drift {drift:.2e}")

    # 6. Unroutable queries fail loudly instead of vanishing: an unqualified
    #    query has no home in a three-model fleet unless a default route is
    #    configured.
    try:
        router.submit(workload[0].qualified("not_registered"))
    except RoutingError as error:
        print(f"\nRoutingError (as expected): {error}")


if __name__ == "__main__":
    main()
