"""Table 7 — model size vs entropy gap on Conviva-A."""

from __future__ import annotations

from conftest import save_report

from repro.bench import table7_model_size


def test_table7_model_size(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        table7_model_size,
        kwargs={"scale": bench_scale, "widths": (32, 64, 128), "epochs": 3},
        iterations=1, rounds=1)
    save_report(results_dir, "table7_model_size", result["text"])

    sizes = [entry["size_mb"] for entry in result["results"].values()]
    gaps = [entry["entropy_gap_bits"] for entry in result["results"].values()]
    # Larger architectures are larger on disk ...
    assert sizes == sorted(sizes)
    # ... and the largest model fits the data at least as well as the smallest.
    assert gaps[-1] <= gaps[0] + 0.25
