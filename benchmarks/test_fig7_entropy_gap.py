"""Figure 7 — estimation accuracy vs artificial entropy gap of an oracle model."""

from __future__ import annotations

from conftest import save_report

from repro.bench import figure7_entropy_gap


def test_figure7_entropy_gap(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        figure7_entropy_gap,
        kwargs={"scale": bench_scale,
                "noise_levels": (0.0, 0.1, 0.5, 0.9),
                "sample_counts": (50, 250, 1000)},
        iterations=1, rounds=1)
    save_report(results_dir, "figure7_entropy_gap", result["text"])

    sweep = result["sweep"]
    # The injected noise increases the measured entropy gap monotonically.
    gaps = [entry["entropy_gap_bits"] for entry in sweep]
    assert gaps == sorted(gaps)
    # With a perfect model and 1000 sample paths the worst-case error is small.
    assert sweep[0]["max_error_naru_1000"] < 15.0
    # More sample paths never hurt the perfect-model case by much.
    assert sweep[0]["max_error_naru_1000"] <= sweep[0]["max_error_naru_50"] * 1.5
