"""Live refresh under partitioned ingest — the serving twin of Table 8.

Not a reproduction of a paper table: this benchmark guards the live-refresh
claim of :class:`repro.serve.RefreshController` and the epoch-keyed cache
stack.  A Naru model trained on the first partition of a date-partitioned
DMV serves a fixed workload while the remaining partitions are ingested one
by one through the controller: the stale model's q-error degrades as the
relation drifts (the registry keeps serving it, one epoch behind per
ingest), a single fine-tune refresh swaps the next model version in
atomically, and the same workload recovers.

Correctness is asserted exactly, not statistically: the long-lived router's
post-refresh estimates must match a cold router built over the refreshed
registry bit-for-bit (``invalid_cache_hits == 0`` — no cache entry of any
layer unlawfully survived an epoch bump), while the epoch-mismatched
result-cache entries the replays collided with must have been *rejected*
(``result_cache_stale_rejects > 0`` — the caches were genuinely warm and
genuinely refused).

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds; the JSON report is written to ``results/serve_refresh.json`` either
way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_refresh

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_refresh(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_refresh_rows=1_200,
                                    serve_refresh_queries=16,
                                    serve_refresh_samples=200,
                                    serve_refresh_epochs=2,
                                    serve_refresh_batch_size=6,
                                    serve_refresh_partitions=3)
    else:
        scale = bench_scale
    result = serve_refresh(scale=scale)
    save_report(results_dir, "serve_refresh", result["text"])
    with open(os.path.join(results_dir, "serve_refresh.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("results", "fresh_p90", "fresh_max", "stale_p90",
                    "stale_max", "refreshed_p90", "refreshed_max",
                    "invalid_cache_hits", "result_cache_stale_rejects",
                    "result_cache", "epochs", "max_staleness_served",
                    "num_queries")},
                  handle, indent=1)

    # The tentpole guarantee, asserted bit-exactly: zero invalid cache hits
    # across every layer, proven against a cache-cold router.
    assert result["invalid_cache_hits"] == 0
    # ... and the zero is earned, not vacuous: the replays really collided
    # with pre-bump result-cache state, which the lookups refused to serve.
    assert result["result_cache_stale_rejects"] > 0

    # The fleet served stale (bounded behind the data), then caught up.
    assert result["max_staleness_served"] >= 1
    assert result["epochs"]["dmv"]["staleness"] == 0

    # The accuracy story of the ingest protocol: drift degrades the stale
    # model's tail error, one fine-tune refresh recovers it.
    assert result["stale_max"] > result["fresh_max"]
    assert result["refreshed_max"] < result["stale_max"]
    if not _SMOKE:
        assert result["stale_p90"] > result["fresh_p90"]
        assert result["refreshed_p90"] < result["stale_p90"]
