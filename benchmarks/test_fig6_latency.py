"""Figure 6 — per-query estimation latency of every estimator."""

from __future__ import annotations

from conftest import save_report

from repro.bench import figure6_estimation_latency


def test_figure6_estimation_latency(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(figure6_estimation_latency, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "figure6_latency", result["text"])

    latencies = result["latencies"]
    naru_name = f"Naru-{bench_scale.naru_samples[-1]}"

    # Every estimator answers in sub-second time at the median on the bench scale.
    for name, quantiles in latencies.items():
        assert quantiles[0.5] < 2_000.0, name
    # More progressive samples cost more time (monotone within noise).
    small_name = f"Naru-{bench_scale.naru_samples[0]}"
    assert latencies[naru_name][0.5] >= 0.5 * latencies[small_name][0.5]
