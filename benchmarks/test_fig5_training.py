"""Figure 5 — training time vs model quality (entropy gap and max error)."""

from __future__ import annotations

from conftest import save_report

from repro.bench import figure5_training_quality


def test_figure5_training_quality(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(figure5_training_quality, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "figure5_training", result["text"])

    for dataset, curve in result["results"].items():
        gaps = [point["entropy_gap_bits"] for point in curve]
        # The entropy gap shrinks as training progresses (allowing small noise).
        assert gaps[-1] <= gaps[0] + 0.25, dataset
        # Estimation quality at the end of training is sane.
        assert curve[-1]["median_error"] < 50.0, dataset
