"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper at a reduced
("bench") scale so the full suite finishes in tens of minutes on a CPU.  The
rendered paper-style tables are written to ``results/<experiment>.txt`` so they
can be compared against the paper after the run (see EXPERIMENTS.md).

Set ``REPRO_SCALE=paper`` and run ``python -m repro.bench run all`` for the
larger configuration.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.bench.scales import SMOKE, ExperimentScale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Reduced scale used by the pytest benchmarks (one notch below SMOKE).
BENCH_SCALE: ExperimentScale = dataclasses.replace(
    SMOKE,
    name="bench",
    dmv_rows=9_000,
    conviva_a_rows=7_000,
    conviva_b_rows=600,
    num_queries=70,
    ood_queries=60,
    naru_epochs=10,
    naru_hidden=(96, 96),
    naru_batch_size=128,
    naru_samples=(500, 1000),
    mscn_training_queries=180,
    mscn_epochs=12,
    kde_sample=500,
    kde_feedback_queries=30,
    latency_queries=30,
    training_curve_epochs=4,
    training_curve_queries=20,
    oracle_queries=25,
    shift_queries=30,
)


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark as ``slow`` so tier-1 CI can deselect the suite.

    The tier-1 test job runs ``pytest -m "not slow"``; running the
    reproduction benchmarks stays an explicit choice (plain ``pytest
    benchmarks`` or ``-m slow``).
    """
    benchmarks_dir = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        if str(item.path).startswith(benchmarks_dir):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: str, name: str, text: str) -> None:
    """Persist the paper-style rendering of one experiment."""
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
