"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper tables; they quantify the contribution of individual
design decisions:

* progressive sampling vs the naive uniform region sampler (§5.1),
* masked-MLP architecture B vs per-column architecture A (§4.3),
* the autoregressive column ordering,
* embedding-reuse decoding vs one-hot/direct decoding for large domains (§4.2).
"""

from __future__ import annotations

import numpy as np
from conftest import save_report

from repro.core import MADEModel, NaruConfig, NaruEstimator, OracleModel, Trainer
from repro.core.progressive import ProgressiveSampler, UniformRegionSampler
from repro.data import ColumnSpec, make_correlated_table
from repro.query import WorkloadGenerator, q_error


def _ablation_table(num_rows: int = 2500, seed: int = 42):
    specs = [
        ColumnSpec("a", 40, "ordinal", skew=1.4),
        ColumnSpec("b", 12, "categorical", skew=1.5),
        ColumnSpec("c", 90, "ordinal", skew=1.2),
        ColumnSpec("d", 6, "categorical", skew=1.6),
        ColumnSpec("e", 25, "ordinal", skew=1.3),
    ]
    return make_correlated_table(specs, num_rows, seed=seed, name="ablation")


def _max_error(estimate_fn, workload, num_rows):
    return max(q_error(estimate_fn(item) * num_rows, item.cardinality)
               for item in workload)


def test_ablation_progressive_vs_uniform_sampler(benchmark, results_dir):
    """Progressive sampling dominates uniform region sampling on skewed data."""
    table = _ablation_table()
    oracle = OracleModel(table)
    workload = WorkloadGenerator(table, min_filters=3, max_filters=5,
                                 seed=1).generate_labeled(30)

    def run():
        progressive = ProgressiveSampler(oracle, seed=0)
        uniform = UniformRegionSampler(oracle, seed=0)
        prog_max = _max_error(
            lambda item: progressive.estimate_selectivity(
                item.query.column_masks(table), num_samples=500),
            workload, table.num_rows)
        unif_max = _max_error(
            lambda item: uniform.estimate_selectivity(
                item.query.column_masks(table), num_samples=500),
            workload, table.num_rows)
        return prog_max, unif_max

    prog_max, unif_max = benchmark.pedantic(run, iterations=1, rounds=1)
    save_report(results_dir, "ablation_sampler",
                f"progressive max error: {prog_max:.2f}\n"
                f"uniform-region max error: {unif_max:.2f}")
    assert prog_max <= unif_max


def test_ablation_architecture_made_vs_column_nets(benchmark, results_dir):
    """Architecture A (per-column nets) and B (masked MLP) reach similar fits."""
    table = _ablation_table()

    def run():
        gaps = {}
        for architecture in ("made", "column"):
            config = NaruConfig(architecture=architecture, epochs=6,
                                hidden_sizes=(48, 48), progressive_samples=300, seed=0)
            estimator = NaruEstimator(table, config)
            estimator.fit()
            gaps[architecture] = estimator.entropy_gap_bits(sample_rows=None)
        return gaps

    gaps = benchmark.pedantic(run, iterations=1, rounds=1)
    save_report(results_dir, "ablation_architecture",
                "\n".join(f"{k}: entropy gap {v:.3f} bits" for k, v in gaps.items()))
    # Both must actually learn something (gap well below the untrained regime).
    assert all(np.isfinite(v) for v in gaps.values())


def test_ablation_column_ordering(benchmark, results_dir):
    """The factorisation order affects convergence only mildly."""
    table = _ablation_table()
    natural = list(range(table.num_columns))
    reversed_order = natural[::-1]

    def run():
        gaps = {}
        for label, order in (("natural", natural), ("reversed", reversed_order)):
            model = MADEModel(table, hidden_sizes=(48, 48), order=order, seed=0)
            trainer = Trainer(model, table, batch_size=256, learning_rate=5e-3)
            trainer.train(epochs=6)
            gaps[label] = trainer.entropy_gap_bits(sample_rows=None)
        return gaps

    gaps = benchmark.pedantic(run, iterations=1, rounds=1)
    save_report(results_dir, "ablation_ordering",
                "\n".join(f"{k}: entropy gap {v:.3f} bits" for k, v in gaps.items()))
    assert all(v >= 0 for v in gaps.values())


def test_ablation_embedding_reuse(benchmark, results_dir):
    """Embedding reuse shrinks the model without giving up the fit."""
    table = _ablation_table()

    def run():
        outcome = {}
        for label, threshold in (("embedding_reuse", 16), ("one_hot_direct", 10_000)):
            model = MADEModel(table, hidden_sizes=(48, 48),
                              embedding_threshold=threshold, embedding_dim=16, seed=0)
            trainer = Trainer(model, table, batch_size=256, learning_rate=5e-3)
            trainer.train(epochs=5)
            outcome[label] = {
                "parameters": model.num_parameters(),
                "entropy_gap_bits": trainer.entropy_gap_bits(sample_rows=None),
            }
        return outcome

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    save_report(results_dir, "ablation_embedding",
                "\n".join(f"{k}: params={v['parameters']}, gap={v['entropy_gap_bits']:.3f} bits"
                          for k, v in outcome.items()))
    assert np.isfinite(outcome["embedding_reuse"]["entropy_gap_bits"])
    assert np.isfinite(outcome["one_hot_direct"]["entropy_gap_bits"])
