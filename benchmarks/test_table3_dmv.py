"""Table 3 — estimation errors on the DMV dataset (all estimator families)."""

from __future__ import annotations

from conftest import save_report

from repro.bench import table3_dmv_accuracy


def test_table3_dmv_accuracy(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(table3_dmv_accuracy, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "table3_dmv", result["text"])

    buckets = result["buckets"]
    naru_name = f"Naru-{bench_scale.naru_samples[-1]}"

    # Shape check 1: Naru's worst-case (low-selectivity max) error beats the
    # independence-assumption estimators by a wide margin, as in the paper.
    naru_low_max = buckets[naru_name]["low"].maximum
    indep_low_max = buckets["Indep"]["low"].maximum
    assert naru_low_max <= indep_low_max * 1.5 or naru_low_max < 15.0

    # Shape check 2: Naru is at least competitive with every baseline at the tail.
    worst_naru = max(buckets[naru_name][bucket].maximum
                     for bucket in ("high", "medium", "low"))
    worst_others = {name: max(summary[bucket].maximum for bucket in ("high", "medium", "low"))
                    for name, summary in buckets.items() if not name.startswith("Naru")}
    assert worst_naru <= 2.0 * min(worst_others.values()) or worst_naru < 20.0

    # Shape check 3: more progressive samples never hurt the tail much.
    small_name = f"Naru-{bench_scale.naru_samples[0]}"
    assert buckets[naru_name]["low"].maximum <= buckets[small_name]["low"].maximum * 2.0
