"""Table 4 — estimation errors on the Conviva-A dataset."""

from __future__ import annotations

from conftest import save_report

from repro.bench import table4_conviva_accuracy


def test_table4_conviva_accuracy(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(table4_conviva_accuracy, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "table4_conviva", result["text"])

    buckets = result["buckets"]
    naru_name = f"Naru-{bench_scale.naru_samples[-1]}"

    # Naru's median error stays in the low single digits across buckets.
    for bucket in ("high", "medium"):
        assert buckets[naru_name][bucket].median < 10.0

    # Naru's low-selectivity tail is no worse than the classical DBMS-style baseline.
    naru_low_max = buckets[naru_name]["low"].maximum
    assert naru_low_max <= buckets["DBMS-1"]["low"].maximum * 2.0 or naru_low_max < 15.0
