"""Multi-model fleet serving — routed registry vs N independent sequential engines.

Not a reproduction of a paper table: this benchmark guards the multi-model
serving claim that one :class:`repro.serve.FleetRouter` over a
:class:`repro.serve.ModelRegistry` (two base tables plus a join relation,
served exactly like a base table per §4.1) answers an interleaved mixed
workload faster than visiting N independent sequential engines — without
changing the estimates or the routing.  Both sides key every query's random
stream by its global workload index, so the results agree to float round-off.

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds and the speedup floor is dropped (tiny workloads underutilise the
batch path); the JSON report is written to ``results/serve_multi.json``
either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_multi

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_multi(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_multi_rows=700,
                                    serve_multi_users=120,
                                    serve_multi_queries=18,
                                    serve_multi_samples=200,
                                    serve_multi_epochs=2,
                                    serve_multi_batch_size=6)
    else:
        scale = bench_scale
    result = serve_multi(scale=scale)
    save_report(results_dir, "serve_multi", result["text"])
    with open(os.path.join(results_dir, "serve_multi.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("speedup", "cold_speedup", "max_estimate_drift",
                    "misrouted", "num_models", "model_storage_bytes",
                    "sequential", "fleet", "fleet_cold", "num_queries",
                    "routes")}, handle, indent=1)

    # Routing must be exact and loud: every query lands on the relation its
    # qualifier names, and nothing is dropped on the floor.
    assert result["misrouted"] == 0
    assert result["num_models"] == 3
    assert len(result["routes"]) == result["num_queries"]
    assert all(0.0 <= estimate <= 1.0 for estimate in result["estimates"])

    # Routing and micro-batching must not change the answers: the same
    # (seed, global index) streams drive both sides, so any difference is
    # float round-off of skipped wildcard columns.
    assert result["max_estimate_drift"] <= 1e-9

    if _SMOKE:
        assert result["speedup"] > 0.0
        assert result["cold_speedup"] > 0.0
    else:
        # The fleet claim: routed, batched, cached serving beats N
        # independent sequential engines on a mixed workload.  The warm
        # steady state typically lands between 2x and 4x; the gate sits at
        # 1.5x to stay clear of timing noise on loaded machines, and the
        # cold pass (~1.2-1.5x) only gets a sanity floor.
        assert result["speedup"] >= 1.5
        assert result["cold_speedup"] >= 0.7
