"""Streaming + SLO-adaptive batching — fixed vs adaptive under bursty arrivals.

Not a reproduction of a paper table: this benchmark guards the streaming
claims of :mod:`repro.serve.stream`.  A bursty workload (the hot relation
arrives in uninterrupted runs) is served with a fixed max-size micro-batch
and with an SLO-adaptive one; the stated p95 dispatch-latency SLO is
calibrated as a fraction of the *measured* fixed-batch p95, so on any
hardware the fixed router misses it by construction while the adaptive
controller — which halves the batch size whenever its latency EWMA threatens
the target — must meet it at steady state.  A shuffled-arrival pass through
:class:`repro.serve.AsyncFleetClient` additionally asserts streaming ≡ batch:
submitting the queries one at a time, out of order, changes no estimate.

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds and the steady-state SLO gate softens to a p95-improvement check
(tiny workloads leave the controller too few dispatches to converge); the
JSON report is written to ``results/serve_stream.json`` either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_stream

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_stream(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_stream_rows=700,
                                    serve_stream_users=120,
                                    serve_stream_queries=48,
                                    serve_stream_samples=200,
                                    serve_stream_epochs=2,
                                    serve_stream_max_batch=12,
                                    serve_stream_burst=6)
    else:
        scale = bench_scale
    result = serve_stream(scale=scale)
    save_report(results_dir, "serve_stream", result["text"])
    with open(os.path.join(results_dir, "serve_stream.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("slo_ms", "slo_fraction", "fixed_p95_ms", "steady_p95_ms",
                    "p95_improvement", "fixed_meets_slo", "adaptive_meets_slo",
                    "max_estimate_drift", "max_batch", "burst_size",
                    "hot_queries", "num_queries", "batch_trace", "controller",
                    "modes", "fixed", "adaptive_warmup", "adaptive_steady",
                    "streamed")},
                  handle, indent=1)

    # Streaming and adaptive batch boundaries must be invisible in the
    # numbers: the warmup, steady and shuffled-arrival streaming passes all
    # reproduce the fixed batch run (the tolerance covers one-ulp BLAS
    # round-off from the different micro-batch shapes).
    assert result["max_estimate_drift"] <= 1e-9

    # The SLO is stated below the measured fixed p95, so the fixed router
    # misses it by construction — the benchmark's premise, kept explicit.
    assert not result["fixed_meets_slo"]
    assert result["slo_ms"] > 0

    # The controller really adapted: starting from the maximum batch size it
    # shrank under the bursts, and the hot relation's steady pass ran at a
    # converged size below the maximum.
    assert result["batch_trace"][0] == result["max_batch"]
    assert min(result["batch_trace"]) < result["max_batch"]
    assert result["controller"]["shrinks"] > 0

    # The workload really is bursty and hot.
    assert result["hot_queries"] >= result["num_queries"] // 2

    if _SMOKE:
        # Too few dispatches to demand convergence — but adaptive batching
        # must still improve the hot relation's p95 dispatch latency.
        assert result["steady_p95_ms"] < result["fixed_p95_ms"]
    else:
        # The headline claim: at steady state the adaptive router meets the
        # stated p95 SLO that fixed max-size batching misses.
        assert result["adaptive_meets_slo"], (
            f"steady p95 {result['steady_p95_ms']:.1f} ms exceeds the stated "
            f"SLO {result['slo_ms']:.1f} ms")
        assert result["p95_improvement"] > 1.5
