"""End-to-end latency SLOs — dispatch-only vs e2e-scoped adaptive batching.

Not a reproduction of a paper table: this benchmark guards the latency
honesty of :mod:`repro.serve.stream`.  A bursty workload is served with a
fixed max-size micro-batch, with the **pre-fix** adaptive controller
(``slo_scope="dispatch"``: it steers micro-batch sizes against dispatch
latency alone, so queueing delay in partially filled batches is neither
measured nor bounded), and with the fixed controller (``slo_scope="e2e"``
plus a flush timeout).  The stated p95 SLO is *end-to-end* — submission to
result — and calibrated as a fraction of the measured fixed-batch e2e p95,
so on any hardware:

* the dispatch-scoped controller converges to dispatch latencies under the
  SLO while its end-to-end p95 **misses** it — the measurement bug this
  benchmark exists to keep visible, and
* the e2e-scoped controller **meets** the same SLO at steady state.

A shuffled-arrival pass through :class:`repro.serve.AsyncFleetClient` and an
unbatched :func:`repro.serve.run_fleet_sequential` baseline additionally
assert that none of this — adaptive boundaries, timeout flushes, streaming —
moves a single estimate.

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds and the steady-state SLO gates soften to an improvement check (tiny
workloads leave the controllers too few dispatches to converge); the JSON
report is written to ``results/serve_stream.json`` either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_stream

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_stream(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_stream_rows=700,
                                    serve_stream_users=120,
                                    serve_stream_queries=48,
                                    serve_stream_samples=200,
                                    serve_stream_epochs=2,
                                    serve_stream_max_batch=12,
                                    serve_stream_burst=6)
    else:
        scale = bench_scale
    result = serve_stream(scale=scale)
    save_report(results_dir, "serve_stream", result["text"])
    with open(os.path.join(results_dir, "serve_stream.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("slo_ms", "slo_fraction", "flush_after_ms",
                    "flush_fraction", "fixed_e2e_p95_ms", "dispatch_scoped",
                    "e2e_scoped", "dispatch_scoped_meets_dispatch_slo",
                    "dispatch_scoped_meets_e2e_slo", "e2e_scoped_meets_e2e_slo",
                    "fixed_meets_e2e_slo", "max_estimate_drift", "max_batch",
                    "burst_size", "hot_queries", "num_queries",
                    "arrival_gap_ms", "dispatch_batch_trace", "e2e_batch_trace",
                    "dispatch_controller", "e2e_controller", "modes", "fixed",
                    "dispatch_steady", "e2e_steady", "streamed")},
                  handle, indent=1)

    # Adaptive boundaries, timeout flushes and shuffled-arrival streaming
    # must be invisible in the numbers: every mode reproduces the unbatched
    # sequential baseline (the tolerance covers one-ulp BLAS round-off from
    # the different micro-batch shapes).
    assert result["max_estimate_drift"] <= 1e-9

    # The SLO is stated below the measured fixed e2e p95, so the fixed
    # router misses it by construction — the benchmark's premise.
    assert not result["fixed_meets_e2e_slo"]
    assert result["slo_ms"] > 0

    # The dispatch-scoped controller really adapted: starting from the
    # maximum batch size it shrank until its dispatch p95 fit the target.
    # (The e2e-scoped run may or may not shrink its size clamp — when the
    # flush timeout already bounds every batch's linger, there is nothing
    # left for multiplicative decrease to do.)
    assert result["dispatch_batch_trace"][0] == result["max_batch"]
    assert min(result["dispatch_batch_trace"]) < result["max_batch"]
    assert result["dispatch_controller"]["shrinks"] > 0

    # The flush timeout really fired: partially filled batches were
    # force-dispatched instead of lingering.
    assert any(row["timeout_flushes"] > 0 for row in result["modes"]
               if row["mode"].startswith("e2e"))

    # The workload really is bursty and hot.
    assert result["hot_queries"] >= result["num_queries"] // 2

    if _SMOKE:
        # Too few dispatches to demand convergence — but e2e-scoped steering
        # must still beat dispatch-only steering on the latency callers see.
        assert result["e2e_scoped"]["e2e_p95_ms"] < \
            result["dispatch_scoped"]["e2e_p95_ms"]
    else:
        # The headline claim, both halves.  The pre-fix controller looks
        # healthy by its own (dispatch-only) accounting...
        assert result["dispatch_scoped_meets_dispatch_slo"], (
            f"dispatch-scoped dispatch p95 "
            f"{result['dispatch_scoped']['dispatch_p95_ms']:.1f} ms exceeds "
            f"the stated SLO {result['slo_ms']:.1f} ms")
        # ...while under-reporting the latency its callers experience: the
        # delivered e2e p95 sits far above the dispatch p95 the controller
        # steers on (threshold-free honesty gap, robust to batch-size noise)
        # and above the stated SLO itself...
        assert result["dispatch_scoped"]["e2e_p95_ms"] > \
            1.4 * result["dispatch_scoped"]["dispatch_p95_ms"], (
            "dispatch-only accounting was unexpectedly honest: e2e p95 "
            f"{result['dispatch_scoped']['e2e_p95_ms']:.1f} ms vs dispatch "
            f"p95 {result['dispatch_scoped']['dispatch_p95_ms']:.1f} ms")
        assert not result["dispatch_scoped_meets_e2e_slo"], (
            f"dispatch-scoped e2e p95 "
            f"{result['dispatch_scoped']['e2e_p95_ms']:.1f} ms unexpectedly "
            f"meets the SLO {result['slo_ms']:.1f} ms — the bug this bench "
            "demonstrates would be invisible")
        # ...which the e2e-scoped controller (with the flush timeout) meets,
        # delivering strictly better end-to-end latency.
        assert result["e2e_scoped_meets_e2e_slo"], (
            f"e2e-scoped e2e p95 {result['e2e_scoped']['e2e_p95_ms']:.1f} ms "
            f"exceeds the stated SLO {result['slo_ms']:.1f} ms")
        assert result["e2e_scoped"]["e2e_p95_ms"] < \
            result["dispatch_scoped"]["e2e_p95_ms"]
