"""Table 6 — query-region size vs (estimated) enumeration vs Naru latency."""

from __future__ import annotations

from conftest import save_report

from repro.bench import table6_query_region


def test_table6_query_region(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(table6_query_region, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "table6_region", result["text"])

    for dataset, row in result["results"].items():
        # The 99th-percentile query region is far beyond anything enumerable.
        assert row["region_size_p99"] > 1e6, dataset
        # Estimated exhaustive enumeration takes hours; progressive sampling
        # answers the same query in (at most) seconds — the paper's headline gap.
        assert row["enumeration_hours_estimated"] * 3600.0 * 1000.0 \
            > 100.0 * row["naru_latency_ms"], dataset
