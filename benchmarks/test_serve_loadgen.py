"""Open-loop load generation — the latency-vs-offered-load curve and chaos.

Not a reproduction of a paper table: this benchmark guards the serve
fleet's behaviour *under offered load it did not agree to*.  A closed-loop
probe calibrates the host's capacity, then :func:`repro.bench.serve_loadgen`
sweeps a ladder of offered rates (fractions of that capacity) open-loop —
arrivals keep coming regardless of completions — producing the
latency-vs-offered-load curve, locating the SLO knee, and running the chaos
drills (slow replica, cache wipe, worker kill) at the mid rate with the
degradation contract asserted: bounded queue growth, typed counted
refusals, zero estimate drift on everything that completed.

The latency column the knee is read from measures completion against each
query's *scheduled* arrival (no coordinated omission), so past saturation it
grows without bound while the from-submission number stays flat — the gap
is the point of open-loop testing.

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds and the knee gate softens (a tiny sweep on shared CI hardware is
too noisy to pin which rung crosses); the JSON report is written to
``results/serve_loadgen.json`` either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_loadgen

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_loadgen(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_loadgen_rows=700,
                                    serve_loadgen_users=120,
                                    serve_loadgen_queries=32,
                                    serve_loadgen_samples=200,
                                    serve_loadgen_epochs=2,
                                    serve_loadgen_duration_s=1.0)
    else:
        scale = bench_scale
    result = serve_loadgen(scale=scale)
    save_report(results_dir, "serve_loadgen", result["text"])
    with open(os.path.join(results_dir, "serve_loadgen.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("capacity_qps", "probe_e2e_p95_ms", "slo_ms",
                    "slo_multiplier", "flush_after_ms", "duration_s",
                    "rate_fractions", "max_pending", "curve", "knee",
                    "chaos_offered_qps", "scenarios", "trace_byte_stable",
                    "num_queries", "workers")},
                  handle, indent=1)

    # Record/replay really is byte-stable: the trace written, loaded and
    # re-serialised inside the experiment came back bit-identical.
    assert result["trace_byte_stable"]

    # The curve has one row per swept rate, each fully accounted: every
    # arrival was either completed or counted shed, and the queue high-water
    # mark stayed within the admission bound at every rung.
    assert len(result["curve"]) == len(result["rate_fractions"])
    for row in result["curve"]:
        assert row["completed"] + row["shed"] == \
            row["submitted"] + row["shed"]
        assert row["completed"] == row["submitted"]
        assert row["peak_pending"] <= result["max_pending"]

    # Every chaos drill upheld the degradation contract.
    scenarios = result["scenarios"]
    assert set(scenarios) == {"slow_replica", "cache_wipe", "kill_worker"}
    for name in ("slow_replica", "cache_wipe"):
        assert scenarios[name]["degraded_not_collapsed"], name
        assert scenarios[name]["max_estimate_drift"] <= 1e-9, name
        assert scenarios[name]["events"], name
    assert scenarios["kill_worker"]["typed_error"]
    assert scenarios["kill_worker"]["error_type"] == "WorkerError"
    assert scenarios["kill_worker"]["error_worker_id"] == 0

    # The SLO knee is read off the curve.
    knee = result["knee"]
    assert knee["slo_ms"] == pytest.approx(
        result["slo_multiplier"] * result["probe_e2e_p95_ms"])
    if _SMOKE:
        # A tiny noisy sweep may meet the SLO everywhere; the knee (last
        # rate under SLO) must still exist whenever any rung completed.
        assert knee["knee_qps"] is not None or knee["rows_over"] > 0
    else:
        # At full scale the ladder spans 0.25x to 4x the probed capacity:
        # the lowest rung meets the SLO and the highest misses it, so the
        # knee is strictly inside the swept range.
        assert knee["knee_qps"] is not None, "even 0.25x capacity missed SLO"
        assert not knee["meets_all"], "4x capacity met the SLO: no knee"
        assert knee["knee_qps"] < knee["first_over_qps"]
        # Past saturation the open-loop (from-scheduled-arrival) latency
        # dwarfs the from-submission number — the coordinated-omission gap
        # this harness exists to expose.
        top = result["curve"][-1]
        assert top["e2e_p95_ms"] > 2.0 * top["service_p95_ms"]
