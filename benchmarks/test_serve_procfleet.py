"""Cross-process sharded fleet — ProcessFleet vs the single-process router.

Not a reproduction of a paper table: this benchmark guards the scale-out
claim of :class:`repro.serve.ProcessFleet` — sharding a fleet of relation
replicas across N OS worker processes multiplies serving capacity without
changing a single estimate.  Each query's random stream is keyed by
``(seed, global workload index)`` alone and models cross the process
boundary losslessly via :mod:`repro.nn.serialization`, so the process fleet
matches the in-process :class:`repro.serve.FleetRouter` bit-for-bit
(``fleet_drift == 0.0``) and a ``batch_size=1`` pass matches
:func:`repro.serve.run_fleet_sequential` exactly
(``max_estimate_drift == 0.0``).

Throughput is asserted on *capacity* — the critical path is the largest
per-worker busy-CPU time, which is what wall-clock becomes once each worker
owns a core — because CI hosts may expose a single core, where OS processes
cannot overlap in wall time no matter how well the fleet shards.  The JSON
report records ``host_cpus`` and the honest ``wall_speedup`` alongside.

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds and the speedup floor is dropped (tiny workloads underutilise the
batch path); the JSON report is written to ``results/serve_procfleet.json``
either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_procfleet

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_procfleet(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_proc_rows=700,
                                    serve_proc_users=120,
                                    serve_proc_queries=24,
                                    serve_proc_samples=200,
                                    serve_proc_epochs=2,
                                    serve_proc_batch_size=6,
                                    serve_proc_workers=2)
    else:
        scale = bench_scale
    result = serve_procfleet(scale=scale)
    save_report(results_dir, "serve_procfleet", result["text"])
    with open(os.path.join(results_dir, "serve_procfleet.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("speedup", "wall_speedup", "max_estimate_drift",
                    "batched_drift", "fleet_drift", "workers", "host_cpus",
                    "spawn_s", "sequential_wall_s", "fleet_cold_s",
                    "fleet_wall_s", "procfleet_cold_s",
                    "procfleet_wall_s", "critical_path_s", "sequential_qps",
                    "fleet_qps", "wall_qps", "capacity_qps", "worker_stats",
                    "num_queries", "sequential", "fleet", "procfleet")},
                  handle, indent=1)

    # The process boundary must be invisible in the numbers: the process
    # fleet matches the in-process router bit-for-bit (same micro-batch
    # composition, caches off on both sides), and the batch_size=1 pass
    # walks the sequential baseline's exact code path on the far side of a
    # pipe.
    assert result["fleet_drift"] == 0.0
    assert result["max_estimate_drift"] == 0.0

    # Every query was served exactly once, and every worker pulled its
    # weight: the round-robin shard layout leaves no worker idle.
    assert result["procfleet"]["num_queries"] == result["num_queries"]
    tallies = result["worker_stats"]
    assert len(tallies) == result["workers"]
    assert all(stats["num_queries"] > 0 for stats in tallies.values())
    assert sum(stats["num_queries"] for stats in tallies.values()) \
        == result["num_queries"]

    if _SMOKE:
        assert result["speedup"] > 0.0
        assert result["wall_speedup"] > 0.0
    else:
        # The scale-out claim: with the workload sharded across 4 workers,
        # the critical path (largest per-worker busy-CPU time) is at most
        # ~1/2.5 of the single-process fleet's wall time.  Wall-clock
        # speedup is only asserted when the host actually has the cores to
        # overlap the workers.
        assert result["speedup"] >= 2.5
        if result["host_cpus"] and result["host_cpus"] >= result["workers"]:
            assert result["wall_speedup"] >= 1.5
