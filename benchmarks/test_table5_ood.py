"""Table 5 — robustness to out-of-distribution queries."""

from __future__ import annotations

from conftest import save_report

from repro.bench import table5_ood_robustness


def test_table5_ood_robustness(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(table5_ood_robustness, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "table5_ood", result["text"])

    summaries = result["summaries"]
    naru_name = f"Naru-{bench_scale.naru_samples[-1]}"

    # Most OOD queries are empty, so a data-driven estimator should be nearly
    # perfect at the median while the supervised MSCN degrades (the paper's point).
    assert summaries[naru_name].median < 2.0
    assert summaries[naru_name].median <= summaries["MSCN-base"].median
    assert summaries[naru_name].maximum <= summaries["MSCN-base"].maximum
    # The workload is genuinely out of distribution.
    assert result["zero_fraction"] > 0.5
