"""Figure 4 — distribution of query selectivities produced by the generator."""

from __future__ import annotations

from conftest import save_report

from repro.bench import figure4_selectivity_distribution


def test_figure4_selectivity_distribution(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(figure4_selectivity_distribution,
                                kwargs={"scale": bench_scale}, iterations=1, rounds=1)
    save_report(results_dir, "figure4_workload", result["text"])

    for dataset, data in result["results"].items():
        fractions = data["bucket_fractions"]
        # The generator covers the whole selectivity spectrum (the paper's goal):
        # every bucket is populated and low-selectivity queries are plentiful.
        assert fractions["low"] > 0.1, dataset
        assert fractions["high"] > 0.05, dataset
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
