"""Serving throughput — batched ``repro.serve`` engine vs sequential sampling.

Not a reproduction of a paper table: this benchmark guards the serving-layer
claim that the fused hot path — column-sliced conditionals, prefix-
deduplicated sampling, packed conditional caching — answers a workload an
order of magnitude faster than the paper's one-query-at-a-time evaluation
loop without changing the estimates (every kernel is row-exact and both
modes use the same per-query random streams, so the results agree bit for
bit: drift is exactly zero).

The CI ``bench-smoke`` job runs this file at *full* scale — the >= 8x
batched-cold perf gate below needs the standard 64-query workload to be
meaningful, and the full run costs only seconds.  ``REPRO_BENCH_SMOKE=1``
still shrinks the configuration and drops the speedup floor to a sanity
check (tiny workloads underutilise the batch path); the JSON report written
to ``results/serve_throughput.json`` is uploaded as a build artifact even on
failure.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_throughput

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_throughput(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_rows=800, serve_queries=16,
                                    serve_samples=300, serve_epochs=2,
                                    serve_batch_size=8)
    else:
        scale = bench_scale
    result = serve_throughput(scale=scale)
    save_report(results_dir, "serve_throughput", result["text"])
    with open(os.path.join(results_dir, "serve_throughput.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("speedup", "cold_speedup", "max_estimate_drift",
                    "sequential", "batched", "batched_cold",
                    "num_queries")}, handle, indent=1)

    # The fused serving path is bit-exact against the unfused sequential
    # baseline — row-exact kernel, bit-identical prefix dedup, exact cache
    # hits — so the drift is not merely small, it is zero.
    assert result["max_estimate_drift"] == 0.0

    if _SMOKE:
        assert result["speedup"] > 0.0
        assert result["cold_speedup"] > 0.0
    else:
        assert result["num_queries"] == 64
        # The headline claim: the fused hot path (column-sliced forward +
        # prefix dedup + packed conditional cache) beats the unfused
        # sequential baseline by an order of magnitude even cold.  Measured
        # ~10.3-11.7x cold and ~24x warm on a single core; the gates sit a
        # couple of x below the measurements to absorb shared-runner timing
        # noise, not to excuse regressions.
        assert result["speedup"] >= 15.0
        assert result["cold_speedup"] >= 8.0
