"""Serving throughput — batched ``repro.serve`` engine vs sequential sampling.

Not a reproduction of a paper table: this benchmark guards the serving-layer
claim that micro-batching plus conditional caching answers a workload several
times faster than the paper's one-query-at-a-time evaluation loop, without
changing the estimates (both modes use the same per-query random streams, so
the results agree to float round-off).

The CI ``bench-smoke`` job runs this file with ``REPRO_BENCH_SMOKE=1``, which
shrinks the configuration to finish in seconds and drops the speedup floor
(tiny workloads underutilise the batch path); the JSON report it writes to
``results/serve_throughput.json`` is uploaded as a build artifact either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_throughput

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_throughput(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_rows=800, serve_queries=16,
                                    serve_samples=300, serve_epochs=2,
                                    serve_batch_size=8)
    else:
        scale = bench_scale
    result = serve_throughput(scale=scale)
    save_report(results_dir, "serve_throughput", result["text"])
    with open(os.path.join(results_dir, "serve_throughput.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("speedup", "cold_speedup", "max_estimate_drift",
                    "sequential", "batched", "batched_cold",
                    "num_queries")}, handle, indent=1)

    # Batching must not change the answers: same per-query streams on both
    # sides, so any difference is float round-off of skipped wildcard columns.
    assert result["max_estimate_drift"] <= 1e-9

    if _SMOKE:
        assert result["speedup"] > 0.0
        assert result["cold_speedup"] > 0.0
    else:
        assert result["num_queries"] == 64
        # The headline claim: batched serving is at least 3x the sequential
        # sampler's throughput on the standard 64-query workload.  The gate is
        # the steady-state (warm-cache) run, which clears 3x with a wide
        # margin (~8x here); the cold first pass typically lands around 3.4x
        # but sits too close to 3.0 to assert against timing noise, so it
        # only gets a sanity floor.
        assert result["speedup"] >= 3.0
        assert result["cold_speedup"] >= 1.5
