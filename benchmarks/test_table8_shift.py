"""Table 8 — robustness to data shifts (stale vs refreshed model)."""

from __future__ import annotations

from conftest import save_report

from repro.bench import table8_data_shift


def test_table8_data_shift(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(table8_data_shift, kwargs={"scale": bench_scale},
                                iterations=1, rounds=1)
    save_report(results_dir, "table8_shift", result["text"])

    rows = result["results"]
    # The refreshed estimator's accuracy stays bounded across all ingests.
    # (The synthetic partitions drift far less than the real DMV feed, so the
    # stale estimator does not necessarily degrade at bench scale; the check
    # here is that periodic refreshing never costs much and stays accurate.)
    assert rows[-1]["refreshed_max"] <= max(rows[-1]["stale_max"] * 3.0, 30.0)
    assert rows[-1]["refreshed_p90"] < 25.0
    assert all(row["refreshed_p90"] < 25.0 for row in rows)
