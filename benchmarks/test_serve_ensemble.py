"""Estimator ensemble over a widened query language — beyond the paper.

Not a reproduction of a paper table: this benchmark guards the query-language
extension (DNF disjunctions, ``LIKE 'x%'`` prefixes) and the capability-based
ensemble that serves it.  A mixed-shape workload is routed across per-relation
ensembles — Naru primaries answering prefixes and small disjunctions by
inclusion–exclusion, sampling fallbacks catching the many-branch disjunctions
the primary refuses — and three claims are asserted exactly:

* routing matches the capability matrix (the fallback serves exactly the
  disjunctions whose branch count exceeds ``max_dnf_branches``);
* the routed fleet and the sequential per-query pass agree bit-for-bit
  (max drift exactly 0.0), so the ensemble perturbs nothing the paper
  measures for conjunctive traffic;
* inclusion–exclusion over exact per-term selectivities reproduces the exact
  union selectivity to float round-off (gap ≤ 1e-9).

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds; the JSON report is written to ``results/serve_ensemble.json`` either
way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_ensemble

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_ensemble(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_ens_rows=1_200,
                                    serve_ens_users=150,
                                    serve_ens_queries=32,
                                    serve_ens_samples=200,
                                    serve_ens_epochs=2,
                                    serve_ens_batch_size=8,
                                    serve_ens_fallback_sample=512,
                                    serve_ens_oracle_rows=120,
                                    serve_ens_oracle_queries=8)
    else:
        scale = bench_scale
    result = serve_ensemble(scale=scale)
    save_report(results_dir, "serve_ensemble", result["text"])
    with open(os.path.join(results_dir, "serve_ensemble.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("shape_mix", "max_estimate_drift", "ie_oracle_gap",
                    "ie_oracle_queries", "fallback_served", "overflow_dnf",
                    "max_dnf_branches", "accuracy_by_estimator", "estimators",
                    "q_error_median", "q_error_p95", "num_queries",
                    "routes")},
                  handle, indent=1)

    # The workload genuinely exercises every shape and both ensemble roles.
    assert set(result["shape_mix"]) == {"conjunctive", "disjunctive", "prefix"}
    assert result["overflow_dnf"] > 0
    assert result["fallback_served"] == result["overflow_dnf"]

    # Determinism: routing through the ensemble is bit-identical to the
    # sequential per-query pass — fallbacks perturb nothing.
    assert result["max_estimate_drift"] == 0.0

    # The inclusion–exclusion expansion is exact when its terms are.
    assert result["ie_oracle_queries"] > 0
    assert result["ie_oracle_gap"] <= 1e-9

    # Both ensemble roles report accuracy and latency columns.
    names = set(result["accuracy_by_estimator"])
    assert any(name.startswith("Naru-") for name in names)
    assert any(name.startswith("Sample(") for name in names)
    assert names == set(result["estimators"])
