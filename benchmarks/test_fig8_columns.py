"""Figure 8 — progressive-sampling accuracy as the column count grows to 100."""

from __future__ import annotations

from conftest import save_report

from repro.bench import figure8_column_scaling


def test_figure8_column_scaling(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        figure8_column_scaling,
        kwargs={"scale": bench_scale,
                "column_counts": (5, 15, 30, 50, 100),
                "sample_counts": (100, 1000)},
        iterations=1, rounds=1)
    save_report(results_dir, "figure8_columns", result["text"])

    rows = result["results"]
    # The joint space blows up with the column count ...
    assert rows[-1]["log10_joint"] > rows[0]["log10_joint"]
    assert rows[-1]["log10_joint"] > 50  # astronomically large at 100 columns
    # ... yet the oracle + progressive sampling stays tractable: with 1000
    # sample paths the worst-case error at 100 columns remains bounded and far
    # below the independence heuristic.
    final = rows[-1]
    assert final["max_error_naru_1000"] < 100.0
    assert final["max_error_naru_1000"] <= final["max_error_Indep"]
