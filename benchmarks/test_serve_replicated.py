"""Replicated hot-relation serving — admission-controlled router vs one engine.

Not a reproduction of a paper table: this benchmark guards the replication
claim of :class:`repro.serve.router.ReplicaGroup` — a hot relation registered
at ``replicas=N`` behind an admission-controlled :class:`repro.serve
.FleetRouter` (bounded pending queues, fleet-wide exact-match result cache)
serves a skewed workload faster than one sequential engine per relation,
without changing a single estimate: the per-query random streams are keyed by
``(seed, global workload index)`` alone, so ``replicas=1`` and ``replicas=N``
agree bit-for-bit up to BLAS round-off, and the warm pass replays the cold
pass's answers from the result cache exactly.

Run with ``REPRO_BENCH_SMOKE=1`` the configuration shrinks to finish in
seconds and the speedup floor is dropped (tiny workloads underutilise the
batch path); the JSON report is written to ``results/serve_replicated.json``
either way.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from conftest import save_report

from repro.bench import serve_replicated

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.mark.slow
def test_serve_replicated(bench_scale, results_dir):
    if _SMOKE:
        scale = dataclasses.replace(bench_scale, serve_repl_rows=700,
                                    serve_repl_users=120,
                                    serve_repl_queries=24,
                                    serve_repl_samples=200,
                                    serve_repl_epochs=2,
                                    serve_repl_batch_size=6,
                                    serve_repl_replicas=3,
                                    serve_repl_max_pending=12)
    else:
        scale = bench_scale
    result = serve_replicated(scale=scale)
    save_report(results_dir, "serve_replicated", result["text"])
    with open(os.path.join(results_dir, "serve_replicated.json"), "w") as handle:
        json.dump({key: result[key] for key in
                   ("speedup", "cold_speedup", "max_estimate_drift",
                    "replica_drift", "warm_drift", "replicas", "hot_queries",
                    "num_queries", "shed", "shed_demo", "shed_demo_served",
                    "result_cache", "result_cache_hits",
                    "sequential_wall_s", "cold_wall_s", "warm_wall_s",
                    "sequential", "fleet_cold", "fleet_warm", "hot_route")},
                  handle, indent=1)

    # Replication must be invisible in the numbers: replicas=1 and
    # replicas=N serve the same estimates (the tolerance covers one-ulp
    # BLAS round-off from the different micro-batch shapes), and both match
    # the unbatched sequential baseline.
    assert result["replica_drift"] <= 1e-12
    assert result["max_estimate_drift"] <= 1e-9

    # The warm pass is answered by the exact-match result cache: every
    # repeat hits, bit-for-bit, and the admission bound sheds nothing under
    # the block policy.
    assert result["warm_drift"] == 0.0
    assert result["result_cache_hits"] == result["num_queries"]
    assert result["shed"] == 0

    # The shed demo refuses most of the burst (its bound admits two queries
    # per group at a time) and accounts for every refusal.
    assert result["shed_demo"] > 0
    assert result["shed_demo"] + result["shed_demo_served"] == result["num_queries"]

    # The workload really is hot: the sessions relation sees the configured
    # majority share and its replica group fans it out.
    assert result["hot_queries"] >= result["num_queries"] // 2
    assert result["hot_route"]["num_replicas"] == result["replicas"]

    if _SMOKE:
        assert result["speedup"] > 0.0
        assert result["cold_speedup"] > 0.0
    else:
        # The replication claim: a replicated, admission-bounded, cached
        # router beats one sequential engine per relation on a hot-relation
        # workload.  The warm pass is served from the result cache, so it
        # clears the 1.5x gate with a wide margin; the cold pass only gets a
        # sanity floor.
        assert result["speedup"] >= 1.5
        assert result["cold_speedup"] >= 0.7
